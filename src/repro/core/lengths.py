"""Exponential edge-length functions with underflow-safe scaling.

The Garg–Könemann style algorithms initialise every edge length to a very
small constant ``delta`` and grow lengths multiplicatively.  For the
approximation ratios the paper evaluates (up to 0.99, i.e. epsilon down to
0.005) the textbook initialisation

    delta = (1 + eps)^(1 - 1/eps) / ((|Smax| - 1) * U)^(1/eps)

underflows IEEE doubles (the exponent ``1/eps`` reaches 200).  The length
function therefore stores *relative* lengths together with a scalar
``log_offset``: the true length of edge ``e`` is
``exp(log_offset) * rel[e]``.  Relative lengths are what the spanning-tree
oracle needs (a common positive factor never changes a minimum spanning
tree), and the only places absolute values matter — the termination tests
``d(t) >= 1`` and ``sum_e c_e d_e >= 1`` — are evaluated in log space.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.util.errors import ConfigurationError

# Renormalise the relative lengths whenever their maximum exceeds this, so
# products of thousands of (1 + eps) factors never overflow.
_RENORM_THRESHOLD = 1e200

# Lazily bound ``repro.core.engine.kernels.active_kernels``.  The engine
# package imports this module, so a top-level import here would re-enter
# a partially initialised package; the first batched update binds the
# function instead (``False`` marks the unresolved state).
_ACTIVE_KERNELS = False


def _active_kernels():
    """The active kernel backend, or ``None`` while kernels can't load."""
    global _ACTIVE_KERNELS
    if _ACTIVE_KERNELS is False:
        try:
            from repro.core.engine.kernels import active_kernels
        except ImportError:  # pragma: no cover - circular-import window
            return None
        _ACTIVE_KERNELS = active_kernels
    return _ACTIVE_KERNELS()


def epsilon_for_ratio(ratio: float, slack_factor: float = 2.0) -> float:
    """Map a target approximation ratio to the FPTAS parameter ``epsilon``.

    The paper's guarantees are ``(1 - 2 eps)`` for MaxFlow (Lemma 3) and
    ``(1 - 3 eps)`` for MaxConcurrentFlow (Lemma 5); ``slack_factor``
    selects which of the two is used.
    """
    if not 0.0 < ratio < 1.0:
        raise ConfigurationError(f"approximation ratio must be in (0, 1), got {ratio}")
    if slack_factor <= 0:
        raise ConfigurationError(f"slack_factor must be positive, got {slack_factor}")
    return (1.0 - ratio) / slack_factor


def maxflow_delta_log(epsilon: float, max_session_size: int, longest_route: float) -> float:
    """``ln(delta)`` for the MaxFlow initialisation (Lemma 3).

    ``delta = (1+eps)^(1 - 1/eps) / ((|Smax| - 1) U)^(1/eps)``.
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if max_session_size < 2:
        raise ConfigurationError("max_session_size must be at least 2")
    if longest_route < 1:
        raise ConfigurationError("longest_route must be at least 1")
    base = (max_session_size - 1) * float(longest_route)
    return (1.0 - 1.0 / epsilon) * math.log1p(epsilon) - (1.0 / epsilon) * math.log(base)


def concurrent_delta_log(epsilon: float, num_edges: int) -> float:
    """``ln(delta)`` for the MaxConcurrentFlow initialisation (Lemma 5).

    ``delta = ((1 - eps) / |E|)^(1/eps)``.
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if num_edges < 1:
        raise ConfigurationError("num_edges must be at least 1")
    return (1.0 / epsilon) * (math.log1p(-epsilon) - math.log(num_edges))


class LengthFunction:
    """Per-edge lengths ``d_e = exp(log_offset) * rel_e`` with safe updates."""

    def __init__(
        self,
        num_edges: int,
        log_offset: float,
        relative: Optional[np.ndarray] = None,
    ) -> None:
        if num_edges < 1:
            raise ConfigurationError("num_edges must be positive")
        self._num_edges = int(num_edges)
        self._log_offset = float(log_offset)
        if relative is None:
            self._rel = np.ones(num_edges, dtype=float)
        else:
            rel = np.asarray(relative, dtype=float).copy()
            if rel.shape != (num_edges,):
                raise ConfigurationError(
                    f"relative lengths must have shape ({num_edges},), got {rel.shape}"
                )
            if np.any(rel <= 0):
                raise ConfigurationError("relative lengths must be strictly positive")
            self._rel = rel
        self._renormalize()

    # ------------------------------------------------------------------
    # constructors matching the paper's initialisations
    # ------------------------------------------------------------------
    @classmethod
    def for_maxflow(
        cls,
        num_edges: int,
        epsilon: float,
        max_session_size: int,
        longest_route: float,
    ) -> "LengthFunction":
        """MaxFlow initialisation ``d_e = delta`` for every edge (Table I line 1)."""
        return cls(num_edges, maxflow_delta_log(epsilon, max_session_size, longest_route))

    @classmethod
    def for_concurrent(
        cls, capacities: Sequence[float], epsilon: float
    ) -> "LengthFunction":
        """MaxConcurrentFlow initialisation ``d_e = delta / c_e`` (Table III line 1)."""
        caps = np.asarray(capacities, dtype=float)
        return cls(
            caps.shape[0],
            concurrent_delta_log(epsilon, caps.shape[0]),
            relative=1.0 / caps,
        )

    @classmethod
    def for_online(cls, capacities: Sequence[float]) -> "LengthFunction":
        """Online initialisation ``d_e = delta / c_e`` (Table VI line 1).

        The online algorithm has no absolute stopping threshold, so the
        value of ``delta`` never influences its decisions; we use
        ``delta = 1``.
        """
        caps = np.asarray(capacities, dtype=float)
        return cls(caps.shape[0], 0.0, relative=1.0 / caps)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of edges covered by the length function."""
        return self._num_edges

    @property
    def relative(self) -> np.ndarray:
        """Relative lengths (true lengths divided by ``exp(log_offset)``).

        This is the vector to hand to the spanning-tree oracle; relative
        and absolute lengths produce identical minimum spanning trees.
        """
        view = self._rel.view()
        view.flags.writeable = False
        return view

    @property
    def log_offset(self) -> float:
        """Natural log of the common scale factor."""
        return self._log_offset

    def log_value(self, relative_quantity: float) -> float:
        """Natural log of the absolute value of ``relative_quantity``.

        ``relative_quantity`` must be expressed in relative-length units
        (e.g. a tree length computed from :attr:`relative`).
        """
        if relative_quantity <= 0:
            return -math.inf
        return math.log(relative_quantity) + self._log_offset

    def at_least_one(self, relative_quantity: float) -> bool:
        """Whether the absolute value of ``relative_quantity`` is ``>= 1``."""
        return self.log_value(relative_quantity) >= 0.0

    def weighted_sum_log(self, weights: Sequence[float]) -> float:
        """``ln(sum_e weights_e * d_e)`` — used for the D2 stop criterion."""
        total = float(np.dot(np.asarray(weights, dtype=float), self._rel))
        if total <= 0:
            return -math.inf
        return math.log(total) + self._log_offset

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def multiply(self, edge_ids: np.ndarray, factors: np.ndarray) -> None:
        """Multiply the lengths of ``edge_ids`` by ``factors`` (elementwise).

        ``edge_ids`` must not repeat an edge: fancy-indexed in-place
        multiplication applies one factor per position, and a repeated id
        would silently keep only its last factor.  The solver hot loops
        satisfy this by construction (a tree visits each physical edge
        once); callers holding an *accumulated batch* of updates — where
        several (edge, factor) pairs may hit the same edge — use
        :meth:`multiply_batch`.
        """
        factors = np.asarray(factors, dtype=float)
        if np.any(factors <= 0):
            raise ConfigurationError("length update factors must be positive")
        self._rel[np.asarray(edge_ids, dtype=np.int64)] *= factors
        self._renormalize()

    def multiply_batch(
        self,
        edge_ids: np.ndarray,
        factors: np.ndarray,
        assume_unique: bool = False,
    ) -> None:
        """Apply a batch of (edge, factor) updates in one vectorised op.

        The batched form of :meth:`multiply`: ``edge_ids`` may repeat an
        edge (``np.multiply.at`` accumulates every factor instead of
        keeping the last), so a caller can concatenate the updates of
        many trees/steps and apply them in a single NumPy call instead
        of one ``multiply`` per step.  Equivalent to — and bit-compatible
        with, up to one shared renormalisation — the sequential loop, as
        multiplication is commutative.

        ``assume_unique=True`` skips the duplicate-safe ``np.multiply.at``
        buffering (and its rollback copy) for batches the caller can
        *verify* are duplicate-free — e.g. the stacked engine's per-step
        flushes, whose ids are a tree's deduplicated ``physical_edges``.
        The fast path is the exact operation sequence of
        :meth:`multiply` (fancy in-place multiply, one renormalisation),
        so it is bit-identical to both the safe path and the sequential
        loop; with a repeated id it would silently keep only the last
        factor, hence the explicit opt-in.
        """
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        factors = np.asarray(factors, dtype=float)
        if edge_ids.shape != factors.shape:
            raise ConfigurationError(
                f"edge_ids and factors must have matching shapes, got "
                f"{edge_ids.shape} and {factors.shape}"
            )
        if np.any(factors <= 0) or not np.all(np.isfinite(factors)):
            raise ConfigurationError(
                "length update factors must be positive and finite"
            )
        if assume_unique:
            backend = _active_kernels()
            if backend is not None:
                backend.multiply_unique(self._rel, edge_ids, factors)
            else:  # pragma: no cover - circular-import window
                self._rel[edge_ids] *= factors
            self._renormalize()
            return
        self._multiply_batch_checked(edge_ids, factors)

    def _multiply_batch_checked(self, edge_ids: np.ndarray, factors: np.ndarray) -> None:
        """Accumulate a validated batch, splitting on double overflow.

        A batch coalescing thousands of factors onto one edge can
        overflow IEEE range before the single end-of-batch
        renormalisation that the sequential loop performs per call.  On
        overflow, roll back and apply the batch in halves (renormalising
        between), restoring the loop's robustness at ~log cost.
        """
        rel_before = self._rel.copy()
        backend = _active_kernels()
        with np.errstate(over="ignore"):
            if backend is not None:
                backend.multiply_at(self._rel, edge_ids, factors)
            else:  # pragma: no cover - circular-import window
                np.multiply.at(self._rel, edge_ids, factors)
        if not np.all(np.isfinite(self._rel)):
            # Restore in place: callers may hold .relative views, which
            # every other mutator keeps live by never rebinding _rel.
            self._rel[:] = rel_before
            if edge_ids.size <= 1:
                raise ConfigurationError(
                    "length update factor overflows the double range"
                )
            half = edge_ids.size // 2
            self._multiply_batch_checked(edge_ids[:half], factors[:half])
            self._multiply_batch_checked(edge_ids[half:], factors[half:])
            return
        self._renormalize()

    def multiply_dense(self, factors: np.ndarray) -> None:
        """Multiply every edge length by the dense ``factors`` vector."""
        factors = np.asarray(factors, dtype=float)
        if factors.shape != (self._num_edges,):
            raise ConfigurationError(
                f"factors must have shape ({self._num_edges},), got {factors.shape}"
            )
        if np.any(factors <= 0):
            raise ConfigurationError("length update factors must be positive")
        self._rel *= factors
        self._renormalize()

    def _renormalize(self) -> None:
        peak = float(self._rel.max())
        if peak > _RENORM_THRESHOLD:
            self._log_offset += math.log(peak)
            self._rel /= peak

    def copy(self) -> "LengthFunction":
        """Deep copy (used when algorithms need to restart phases)."""
        return LengthFunction(self._num_edges, self._log_offset, self._rel.copy())
