"""Core algorithms: the paper's primary contribution.

* :class:`MaxFlow` — FPTAS for the overlay maximum flow problem M1
  (paper Table I),
* :class:`MaxConcurrentFlow` — FPTAS for the overlay maximum concurrent
  flow problem M2 (paper Table III), achieving weighted max-min fairness,
* :class:`RandomMinCongestion` — randomized rounding to a bounded number
  of trees per session (paper Table V),
* :class:`OnlineMinCongestion` — the online, single-tree-per-arrival
  algorithm with the ``O(log |E|)`` congestion bound (paper Table VI),
* :class:`LengthFunction` — the shared, numerically robust exponential
  length function,
* :class:`FlowSolution` — the common result container.
"""

from repro.core.lengths import (
    LengthFunction,
    epsilon_for_ratio,
    maxflow_delta_log,
    concurrent_delta_log,
)
from repro.core.result import (
    TreeFlow,
    SessionFlowAccumulator,
    SessionResult,
    FlowSolution,
)
from repro.core.maxflow import MaxFlow, MaxFlowConfig
from repro.core.maxconcurrent import MaxConcurrentFlow, MaxConcurrentFlowConfig
from repro.core.online import OnlineMinCongestion, OnlineConfig, OnlineState
from repro.core.rounding import RandomMinCongestion, RoundedSelection
from repro.core.solver import (
    make_routing,
    solve_max_flow,
    solve_max_concurrent_flow,
    solve_online,
    solve_randomized_rounding,
    standalone_session_rates,
)

__all__ = [
    "LengthFunction",
    "epsilon_for_ratio",
    "maxflow_delta_log",
    "concurrent_delta_log",
    "TreeFlow",
    "SessionFlowAccumulator",
    "SessionResult",
    "FlowSolution",
    "MaxFlow",
    "MaxFlowConfig",
    "MaxConcurrentFlow",
    "MaxConcurrentFlowConfig",
    "OnlineMinCongestion",
    "OnlineConfig",
    "OnlineState",
    "RandomMinCongestion",
    "RoundedSelection",
    "make_routing",
    "solve_max_flow",
    "solve_max_concurrent_flow",
    "solve_online",
    "solve_randomized_rounding",
    "standalone_session_rates",
]
