"""Solution containers shared by all flow algorithms.

Every algorithm produces a :class:`FlowSolution`: per-session tree flows,
per-session rates, the aggregate throughput objective of problem M1, the
per-physical-edge traffic vector, and the bookkeeping the paper's tables
report (number of distinct trees, number of MST operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.topology.network import PhysicalNetwork
from repro.util.cdf import cumulative_distribution
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class TreeFlow:
    """A single overlay tree together with the flow routed along it."""

    tree: OverlayTree
    flow: float

    def __post_init__(self) -> None:
        if self.flow < 0:
            raise ConfigurationError(f"tree flow must be non-negative, got {self.flow}")


@dataclass
class SessionFlowAccumulator:
    """Mutable per-session flow bookkeeping used while an algorithm runs.

    Flows are keyed by the tree's canonical identity so that routing the
    same tree twice accumulates into one entry — which is exactly how the
    paper counts "number of trees".
    """

    session: Session
    _flows: Dict[Tuple, Tuple[OverlayTree, float]] = field(default_factory=dict)

    def add(self, tree: OverlayTree, flow: float) -> None:
        """Accumulate ``flow`` units on ``tree``."""
        if flow < 0:
            raise ConfigurationError(f"flow must be non-negative, got {flow}")
        if flow == 0:
            return
        key = tree.canonical_key()
        if key in self._flows:
            existing_tree, existing_flow = self._flows[key]
            self._flows[key] = (existing_tree, existing_flow + flow)
        else:
            self._flows[key] = (tree, flow)

    def scaled(self, factor: float) -> List[TreeFlow]:
        """Return the accumulated flows multiplied by ``factor``."""
        return [TreeFlow(tree=t, flow=f * factor) for t, f in self._flows.values()]

    @property
    def total_flow(self) -> float:
        """Unscaled total flow routed for this session."""
        return float(sum(f for _, f in self._flows.values()))

    @property
    def num_trees(self) -> int:
        """Number of distinct trees carrying flow."""
        return len(self._flows)


@dataclass(frozen=True)
class SessionResult:
    """Final (feasible) per-session outcome."""

    session: Session
    tree_flows: Tuple[TreeFlow, ...]

    @property
    def rate(self) -> float:
        """Session rate: total flow over all trees (the paper's "Rate of Session")."""
        return float(sum(tf.flow for tf in self.tree_flows))

    @property
    def num_trees(self) -> int:
        """Number of distinct trees carrying positive flow."""
        return sum(1 for tf in self.tree_flows if tf.flow > 0)

    @property
    def aggregate_receiver_rate(self) -> float:
        """Rate times receiver count — the session's share of overall throughput."""
        return self.rate * self.session.num_receivers

    def tree_rates(self) -> np.ndarray:
        """Per-tree flow vector (unsorted)."""
        return np.asarray([tf.flow for tf in self.tree_flows], dtype=float)

    def rate_distribution(self) -> Tuple[np.ndarray, np.ndarray]:
        """Accumulative rate distribution vs normalized tree rank (Figs 2/3/7/8/17)."""
        return cumulative_distribution(self.tree_rates())

    def edge_flows(self, num_edges: int) -> np.ndarray:
        """Physical traffic this session places on each edge.

        One ``M @ flows`` scatter over the concatenated tree columns:
        ``np.add.at`` applies the additions sequentially in array order
        (tree by tree, each tree's edges in stored order), which is
        bit-identical to the per-tree fancy-``+=`` loop it replaced —
        same per-edge accumulation sequence.
        """
        out = np.zeros(num_edges, dtype=float)
        if not self.tree_flows:
            return out
        rows = np.concatenate([tf.tree.physical_edges for tf in self.tree_flows])
        values = np.concatenate(
            [tf.tree.usage_values * tf.flow for tf in self.tree_flows]
        )
        np.add.at(out, rows, values)
        return out


@dataclass(frozen=True)
class FlowSolution:
    """Complete outcome of one algorithm run.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name ("MaxFlow", "MaxConcurrentFlow", ...).
    sessions:
        Per-session results, in the order sessions were supplied.
    network:
        The physical network the problem was solved on.
    epsilon:
        FPTAS parameter used (``None`` for the online/rounding algorithms).
    oracle_calls:
        Number of minimum-overlay-spanning-tree operations (the paper's
        running-time metric).
    extra:
        Algorithm-specific extras (e.g. pre-scaling oracle calls, the
        concurrent throughput ``lambda``, congestion values).
    instrumentation:
        The :class:`repro.core.engine` telemetry snapshot of the run
        that produced this solution (phases, oracle-query rounds,
        batched-vs-per-session oracle time, congestion snapshots).
        ``None`` for solutions built outside the engine (e.g. rounding
        selections, deserialized legacy reports).  Excluded from
        equality: two runs of the same algorithm are the *same solution*
        even when their wall-clock telemetry differs.
    """

    algorithm: str
    sessions: Tuple[SessionResult, ...]
    network: PhysicalNetwork
    epsilon: Optional[float] = None
    oracle_calls: int = 0
    extra: Mapping[str, float] = field(default_factory=dict)
    instrumentation: Optional[Mapping[str, object]] = field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    # headline metrics
    # ------------------------------------------------------------------
    @property
    def session_rates(self) -> np.ndarray:
        """Vector of session rates."""
        return np.asarray([s.rate for s in self.sessions], dtype=float)

    @property
    def overall_throughput(self) -> float:
        """Aggregate receiving rate ``sum_i (|S_i| - 1) * rate_i`` (paper tables)."""
        return float(sum(s.aggregate_receiver_rate for s in self.sessions))

    @property
    def min_rate(self) -> float:
        """Minimum session rate (Fig. 15)."""
        if not self.sessions:
            return 0.0
        return float(min(s.rate for s in self.sessions))

    @property
    def concurrent_throughput(self) -> float:
        """``lambda = min_i rate_i / dem(i)`` — the M2 objective value."""
        if not self.sessions:
            return 0.0
        return float(min(s.rate / s.session.demand for s in self.sessions))

    @property
    def num_trees_per_session(self) -> List[int]:
        """Distinct tree counts, in session order (paper tables)."""
        return [s.num_trees for s in self.sessions]

    # ------------------------------------------------------------------
    # physical-layer views
    # ------------------------------------------------------------------
    def edge_flows(self) -> np.ndarray:
        """Total traffic per physical edge across all sessions."""
        out = np.zeros(self.network.num_edges, dtype=float)
        for s in self.sessions:
            out += s.edge_flows(self.network.num_edges)
        return out

    def link_utilization(self, covered_only: bool = True) -> np.ndarray:
        """Per-edge utilization ratio ``flow_e / c_e``.

        With ``covered_only`` (the paper's convention for Figs 4/9/14) the
        vector is restricted to edges that belong to at least one overlay
        link of a live session, i.e. edges with non-zero usage in at least
        one tree that carries flow... plus edges on any session's overlay
        routes; here we use the edges touched by any selected tree.
        """
        flows = self.edge_flows()
        utilization = flows / self.network.capacities
        if not covered_only:
            return utilization
        covered = np.zeros(self.network.num_edges, dtype=bool)
        for s in self.sessions:
            for tf in s.tree_flows:
                covered[tf.tree.physical_edges] = True
        return utilization[covered]

    def max_congestion(self) -> float:
        """Maximum link utilization (``l_max`` in the rounding/online algorithms)."""
        utilization = self.edge_flows() / self.network.capacities
        return float(utilization.max()) if utilization.size else 0.0

    def is_feasible(self, tolerance: float = 1e-6) -> bool:
        """Whether total per-edge traffic respects capacities (within tolerance)."""
        flows = self.edge_flows()
        return bool(np.all(flows <= self.network.capacities * (1.0 + tolerance)))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "FlowSolution":
        """Return a copy with every tree flow multiplied by ``factor``."""
        if factor < 0:
            raise ConfigurationError(f"scale factor must be non-negative, got {factor}")
        sessions = tuple(
            SessionResult(
                session=s.session,
                tree_flows=tuple(
                    TreeFlow(tree=tf.tree, flow=tf.flow * factor) for tf in s.tree_flows
                ),
            )
            for s in self.sessions
        )
        return FlowSolution(
            algorithm=self.algorithm,
            sessions=sessions,
            network=self.network,
            epsilon=self.epsilon,
            oracle_calls=self.oracle_calls,
            extra=dict(self.extra),
            instrumentation=self.instrumentation,
        )

    def summary(self) -> Dict[str, float]:
        """Headline metrics as a flat dict (used by experiment reports)."""
        out: Dict[str, float] = {
            "overall_throughput": self.overall_throughput,
            "min_rate": self.min_rate,
            "concurrent_throughput": self.concurrent_throughput,
            "max_congestion": self.max_congestion(),
            "oracle_calls": float(self.oracle_calls),
        }
        for index, s in enumerate(self.sessions):
            out[f"rate_session_{index + 1}"] = s.rate
            out[f"trees_session_{index + 1}"] = float(s.num_trees)
        return out
