"""MaxFlow — the FPTAS for the overlay maximum flow problem (paper Table I).

Problem M1 maximises the aggregate receiver throughput over all sessions,
allowing each session's commodity to be split over arbitrarily many
overlay trees.  Following Garg–Könemann (and the paper's Table I):

1. every edge length starts at ``delta``,
2. each iteration computes the minimum overlay spanning tree of every
   session under the current lengths, normalises the lengths by the
   receiver-count ratio ``(|Smax| - 1) / (|S_i| - 1)``, and picks the
   overall minimum,
3. if that normalised length is at least 1 the algorithm stops; otherwise
   it routes the tree's bottleneck capacity ``min_e c_e / n_e(t)`` along
   the tree and multiplies the lengths of the tree's edges by
   ``1 + eps * n_e(t) * c / c_e``,
4. finally the accumulated (infeasible) flow is scaled by
   ``log_{1+eps}((1 + eps) / delta)`` which makes it feasible and within
   ``(1 - 2 eps)`` of the optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.engine import MaxFlowPolicy, NormalizedLengthStop, PhaseEngine
from repro.core.engine.instrumentation import Instrumentation
from repro.core.lengths import LengthFunction, epsilon_for_ratio
from repro.core.result import FlowSolution, SessionResult
from repro.overlay.oracle import MinimumOverlayTreeOracle, build_oracles
from repro.overlay.session import Session
from repro.routing.base import RoutingModel
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class MaxFlowConfig:
    """Configuration of the MaxFlow FPTAS.

    Attributes
    ----------
    epsilon:
        The FPTAS accuracy parameter; the returned flow is at least
        ``(1 - 2 epsilon)`` times optimal.  Exactly one of ``epsilon`` and
        ``approximation_ratio`` must be provided.
    approximation_ratio:
        Convenience alternative: target ratio ``1 - 2 epsilon``.
    max_iterations:
        Hard safety cap on augmentation iterations.  ``None`` derives the
        provable bound from Lemma 1 with a x10 safety factor.
    memoize:
        Oracle tree-construction memoization (``None`` = process default,
        on).  Purely a performance switch; results are identical either
        way.
    batch_oracle:
        Serve each iteration's all-session oracle scan through the
        engine's :class:`~repro.core.engine.BatchedOracleFront` (one
        stacked incidence mat-vec under fixed routing; one
        union-of-members Dijkstra under dynamic routing).  ``None`` =
        default, on.  Purely a performance switch; results are
        bit-identical either way.
    stacked_trees:
        Run the engine's stacked-tree path: every distinct tree lives as
        a column of a shared :class:`~repro.core.engine.TreeLedger`, a
        round's tree lengths are one ``lengths @ M`` product and length
        updates flush as one deduplicated batch per step.  ``None`` =
        process default (on).  Purely a performance switch; results are
        bit-identical either way.
    kernel_backend:
        Kernel backend for the ledger/length hot ops (``None`` = process
        default, usually ``"numpy"``; see
        :mod:`repro.core.engine.kernels`).  ``"numba"`` falls back to
        ``"numpy"`` with a one-time warning when numba is absent.
        Ordered backends pin a left-to-right accumulation order, so
        results are bit-identical *per backend* (loop vs. stacked), not
        across backends.
    max_events:
        Bound on the run's retained instrumentation event log (``None``
        = engine default).  Telemetry capacity only; never changes the
        solution.
    """

    epsilon: Optional[float] = None
    approximation_ratio: Optional[float] = None
    max_iterations: Optional[int] = None
    memoize: Optional[bool] = None
    batch_oracle: Optional[bool] = None
    stacked_trees: Optional[bool] = None
    kernel_backend: Optional[str] = None
    max_events: Optional[int] = None

    def resolved_epsilon(self) -> float:
        """The epsilon actually used (resolving the ratio form)."""
        if (self.epsilon is None) == (self.approximation_ratio is None):
            raise ConfigurationError(
                "exactly one of epsilon / approximation_ratio must be set"
            )
        if self.epsilon is not None:
            if not 0 < self.epsilon < 0.5:
                raise ConfigurationError(
                    f"epsilon must be in (0, 0.5), got {self.epsilon}"
                )
            return float(self.epsilon)
        return epsilon_for_ratio(self.approximation_ratio, slack_factor=2.0)


class MaxFlow:
    """The maximum flow FPTAS over overlay spanning trees."""

    def __init__(
        self,
        sessions: Sequence[Session],
        routing: RoutingModel,
        config: Optional[MaxFlowConfig] = None,
    ) -> None:
        if not sessions:
            raise ConfigurationError("at least one session is required")
        self._sessions = list(sessions)
        for s in self._sessions:
            s.validate_against(routing.network)
        self._routing = routing
        self._network = routing.network
        self._config = config or MaxFlowConfig(approximation_ratio=0.95)
        self._oracles = build_oracles(
            self._sessions, routing, memoize=self._config.memoize
        )

    @property
    def oracles(self) -> Sequence[MinimumOverlayTreeOracle]:
        """The per-session spanning-tree oracles (exposes MST-op counters)."""
        return tuple(self._oracles)

    def solve(self) -> FlowSolution:
        """Run the FPTAS and return a feasible, near-optimal flow."""
        epsilon = self._config.resolved_epsilon()
        capacities = self._network.capacities
        num_edges = self._network.num_edges
        max_size = max(s.size for s in self._sessions)
        longest_route = max(1, max(o.max_route_length() for o in self._oracles))

        lengths = LengthFunction.for_maxflow(num_edges, epsilon, max_size, longest_route)

        # Scale factor applied to the raw flow at the end (Lemma 2):
        # log_{1+eps}((1 + eps) / delta).
        log_delta = lengths.log_offset
        scale_denominator = (math.log1p(epsilon) - log_delta) / math.log1p(epsilon)

        if self._config.max_iterations is not None:
            iteration_cap = self._config.max_iterations
        else:
            iteration_cap = int(10 * num_edges * max(1.0, scale_denominator)) + 10

        # Table I on the shared phase engine: every step queries all
        # sessions (one batched pass over the shared length array under
        # fixed routing), routes the bottleneck of the minimum normalised
        # tree, and stops when that normalised length reaches 1.
        engine = PhaseEngine(
            oracles=self._oracles,
            lengths=lengths,
            capacities=capacities,
            policy=MaxFlowPolicy(epsilon=epsilon, max_session_size=max_size),
            stopping=NormalizedLengthStop(),
            step_cap=iteration_cap,
            cap_message=f"MaxFlow exceeded the iteration cap of {iteration_cap}",
            batch_oracle=self._config.batch_oracle,
            stacked_trees=self._config.stacked_trees,
            kernel_backend=self._config.kernel_backend,
            instrumentation=(
                Instrumentation(max_events=self._config.max_events)
                if self._config.max_events is not None
                else None
            ),
        )
        run = engine.run()
        iterations = run.steps

        scale = 1.0 / scale_denominator
        sessions = tuple(
            SessionResult(session=acc.session, tree_flows=tuple(acc.scaled(scale)))
            for acc in run.accumulators
        )
        # Guard against the final augmentation pushing a link marginally over
        # capacity: rescale uniformly if the scaled flow is infeasible.
        probe = FlowSolution(
            algorithm="MaxFlow", sessions=sessions, network=self._network
        )
        congestion = probe.max_congestion()
        if congestion > 1.0:
            from repro.core.result import TreeFlow

            sessions = tuple(
                SessionResult(
                    session=s.session,
                    tree_flows=tuple(
                        TreeFlow(tree=tf.tree, flow=tf.flow / congestion)
                        for tf in s.tree_flows
                    ),
                )
                for s in sessions
            )
        oracle_calls = sum(o.call_count for o in self._oracles)
        return FlowSolution(
            algorithm="MaxFlow",
            sessions=sessions,
            network=self._network,
            epsilon=epsilon,
            oracle_calls=oracle_calls,
            extra={
                "iterations": float(iterations),
                "scale_denominator": scale_denominator,
                "longest_route": float(longest_route),
                "routing": "dynamic" if self._routing.is_dynamic else "fixed",
            },
            instrumentation=run.instrumentation.snapshot(),
        )


def solve_max_flow(
    sessions: Sequence[Session],
    routing: RoutingModel,
    epsilon: Optional[float] = None,
    approximation_ratio: Optional[float] = None,
) -> FlowSolution:
    """Convenience wrapper: build a :class:`MaxFlow` solver and run it."""
    if epsilon is None and approximation_ratio is None:
        approximation_ratio = 0.95
    config = MaxFlowConfig(epsilon=epsilon, approximation_ratio=approximation_ratio)
    return MaxFlow(sessions, routing, config).solve()
