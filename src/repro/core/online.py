"""Online-MinCongestion — the online unsplittable tree-selection algorithm.

Paper Table VI / Section IV-C.  Sessions arrive one at a time; each
arriving session is routed on a *single* overlay tree — the minimum
overlay spanning tree under the current exponential length function — and
never rerouted.  The algorithm keeps, per physical edge,

* the length ``d_e`` (multiplied by ``1 + sigma * n_e(t) * dem(i) / c_e``
  whenever a tree crosses the edge), and
* the congestion ``l_e`` (incremented by ``n_e(t) * dem(i) / c_e``).

Scaling all demands by the final maximum congestion ``l_max`` yields a
feasible solution whose congestion is within ``O(log |E|)`` of the
optimum (paper Theorem 4).  The step size ``sigma`` is the knob the
paper's Fig. 5/6 sweeps (there written as ``r``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import OnlineArrivalPolicy, PhaseEngine, RunToExhaustion
from repro.core.engine.instrumentation import Instrumentation
from repro.core.lengths import LengthFunction
from repro.core.result import FlowSolution, SessionResult, TreeFlow
from repro.overlay.oracle import MinimumOverlayTreeOracle
from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.routing.base import RoutingModel
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class OnlineConfig:
    """Configuration of the online algorithm.

    Attributes
    ----------
    sigma:
        Step size of the length update (the paper's ``r`` in Figs 5/6).
    apply_no_bottleneck_scaling:
        When true, demands are scaled down so that
        ``max_i dem(i) * |Smax| / min_e c_e = 1 / (2k)``, the paper's
        sufficient condition for the Theorem 4 bound.  The scaling only
        affects the routing decisions through the length updates; reported
        rates are always re-expressed in original demand units.
    memoize:
        Oracle tree-construction memoization (``None`` = process default,
        on).  Purely a performance switch; results are identical either
        way.
    stacked_trees:
        Run the engine's stacked-tree path: trees live as columns of a
        shared :class:`~repro.core.engine.TreeLedger`, and under fixed
        routing a prefix of independent (footprint-disjoint) pending
        arrivals is queried as one grouped round whose tree lengths are
        a single ledger product.  ``None`` = process default (on).
        Purely a performance switch; results are bit-identical either
        way.
    kernel_backend:
        Kernel backend for the ledger/length hot ops (``None`` = process
        default; see :mod:`repro.core.engine.kernels`).  Routing
        decisions are bit-identical loop-vs-stacked *per backend*;
        ordered backends pin their own accumulation order.
    max_events:
        Bound on the run's retained instrumentation event log (``None``
        = engine default).  Telemetry capacity only; never changes the
        routing decisions.
    """

    sigma: float = 10.0
    apply_no_bottleneck_scaling: bool = False
    memoize: Optional[bool] = None
    stacked_trees: Optional[bool] = None
    kernel_backend: Optional[str] = None
    max_events: Optional[int] = None

    def validate(self) -> None:
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {self.sigma}")


@dataclass
class OnlineState:
    """Mutable state of an :class:`OnlineMinCongestion` run.

    Exposed so applications can inspect congestion evolution as sessions
    join (e.g. for admission-control style examples).
    """

    lengths: LengthFunction
    congestion: np.ndarray
    assignments: List[Tuple[Session, OverlayTree, float]] = field(default_factory=list)
    oracle_calls: int = 0

    @property
    def max_congestion(self) -> float:
        """Current ``l_max``."""
        return float(self.congestion.max()) if self.congestion.size else 0.0


class OnlineMinCongestion:
    """Online minimum-congestion tree selection for arriving sessions."""

    def __init__(
        self,
        routing: RoutingModel,
        config: Optional[OnlineConfig] = None,
    ) -> None:
        self._routing = routing
        self._network = routing.network
        self._config = config or OnlineConfig()
        self._config.validate()
        self._demand_scale = 1.0
        # Table VI on the shared phase engine, driven stepwise: each
        # accepted arrival is one engine step.  Oracles are shared per
        # member set through the engine's dynamic oracle table, so all
        # replicas of a logical session hit one tree cache.
        self._policy = OnlineArrivalPolicy(sigma=self._config.sigma)
        self._engine = PhaseEngine(
            oracles=[],
            lengths=LengthFunction.for_online(self._network.capacities),
            capacities=self._network.capacities,
            policy=self._policy,
            stopping=RunToExhaustion(),
            accumulate_flows=False,
            track_congestion=True,
            batch_oracle=False,
            oracle_factory=lambda session: MinimumOverlayTreeOracle(
                session, self._routing, memoize=self._config.memoize
            ),
            stacked_trees=self._config.stacked_trees,
            kernel_backend=self._config.kernel_backend,
            instrumentation=(
                Instrumentation(max_events=self._config.max_events)
                if self._config.max_events is not None
                else None
            ),
        )
        self._state = OnlineState(
            lengths=self._engine.lengths,
            congestion=self._engine.congestion,
            assignments=self._policy.assignments,
        )

    @property
    def state(self) -> OnlineState:
        """Current run state (lengths, congestion, assignments)."""
        return self._state

    # ------------------------------------------------------------------
    # online interface
    # ------------------------------------------------------------------
    def prepare_demand_scaling(self, sessions: Sequence[Session]) -> float:
        """Compute the no-bottleneck demand scale for a known session batch.

        Only used when ``apply_no_bottleneck_scaling`` is enabled and the
        arrival sequence is known ahead of time (as in the experiments).
        Returns the scale applied to demands internally.
        """
        if not self._config.apply_no_bottleneck_scaling or not sessions:
            self._demand_scale = 1.0
            self._policy.demand_scale = 1.0
            return self._demand_scale
        k = len(sessions)
        max_dem = max(s.demand for s in sessions)
        max_size = max(s.size for s in sessions)
        min_cap = float(np.min(self._network.capacities))
        # Choose scale so max dem(i) * |Smax| / min c_e == 1 / (2k).
        target = min_cap / (2.0 * k * max_size)
        self._demand_scale = target / max_dem
        self._policy.demand_scale = self._demand_scale
        return self._demand_scale

    def accept(self, session: Session) -> OverlayTree:
        """Route an arriving session on one tree and update lengths/congestion."""
        session.validate_against(self._network)
        self._policy.feed(session)
        action = self._engine.step()
        self._state.oracle_calls += 1
        return action.tree

    def accept_all(self, sessions: Sequence[Session]) -> List[OverlayTree]:
        """Route a whole arrival sequence, in order.

        The whole sequence is fed before stepping, which lets the
        stacked engine path serve prefixes of independent
        (footprint-disjoint) arrivals as grouped query rounds.  Each
        arrival is still routed by its own engine step, in order, with
        its own length/congestion update — decisions and results are
        bit-identical to one-at-a-time :meth:`accept` calls.
        """
        self.prepare_demand_scaling(sessions)
        trees: List[OverlayTree] = []
        for session in sessions:
            session.validate_against(self._network)
            self._policy.feed(session)
        for _ in sessions:
            action = self._engine.step()
            self._state.oracle_calls += 1
            trees.append(action.tree)
        return trees

    # ------------------------------------------------------------------
    # result extraction
    # ------------------------------------------------------------------
    def solution(
        self,
        group_by_members: bool = True,
        saturate: bool = True,
    ) -> FlowSolution:
        """Package the assignments made so far into a :class:`FlowSolution`.

        Parameters
        ----------
        group_by_members:
            The paper's experiments replicate every logical session into
            many independently-arriving copies; with this flag all copies
            sharing the same member set are reported as one session whose
            rate is the sum of its copies' rates (how Figs 5/6 and 18/19
            present results).
        saturate:
            Scale every rate by ``1 / l_max`` so the busiest physical link
            is exactly saturated (the paper's way of turning congestion
            into achievable throughput).  When the current ``l_max`` is
            zero, rates are reported as raw demands.
        """
        if not self._state.assignments:
            raise ConfigurationError("no sessions have been accepted yet")
        lmax = self._state.max_congestion
        # Congestion is measured in *scaled* demand units; rates below are
        # expressed in original units, so the rate of one copy is
        # dem / (lmax / demand_scale) when saturating.
        effective_lmax = lmax / self._demand_scale if self._demand_scale > 0 else lmax
        if saturate and effective_lmax > 0:
            rate_factor = 1.0 / effective_lmax
        else:
            rate_factor = 1.0

        groups: Dict[Tuple[int, ...], List[Tuple[Session, OverlayTree, float]]] = {}
        order: List[Tuple[int, ...]] = []
        for session, tree, demand in self._state.assignments:
            key = tuple(sorted(session.members)) if group_by_members else (id(session),)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((session, tree, demand))

        session_results = []
        for key in order:
            entries = groups[key]
            base_session = entries[0][0]
            total_demand = sum(d for _, _, d in entries)
            # Strip the "#<i>" replica suffix appended by Session.replicate.
            # rsplit keeps base names that themselves start with "#" intact
            # (a plain split("#")[0] would yield "" and fall back to the
            # full name, replica suffix included).
            representative = Session(
                base_session.members,
                demand=total_demand,
                source=base_session.source,
                name=base_session.name.rsplit("#", 1)[0] or base_session.name,
            )
            tree_flows: Dict[Tuple, TreeFlow] = {}
            for _, tree, demand in entries:
                flow = demand * rate_factor
                k = tree.canonical_key()
                if k in tree_flows:
                    tree_flows[k] = TreeFlow(tree=tree, flow=tree_flows[k].flow + flow)
                else:
                    tree_flows[k] = TreeFlow(tree=tree, flow=flow)
            session_results.append(
                SessionResult(session=representative, tree_flows=tuple(tree_flows.values()))
            )

        return FlowSolution(
            algorithm="Online-MinCongestion",
            sessions=tuple(session_results),
            network=self._network,
            epsilon=None,
            oracle_calls=self._state.oracle_calls,
            extra={
                "sigma": self._config.sigma,
                "max_congestion": lmax,
                "effective_max_congestion": effective_lmax,
                "demand_scale": self._demand_scale,
                "num_arrivals": float(len(self._state.assignments)),
                "routing": "dynamic" if self._routing.is_dynamic else "fixed",
            },
            instrumentation=self._engine.instrumentation.snapshot(),
        )


def solve_online(
    sessions: Sequence[Session],
    routing: RoutingModel,
    sigma: float = 10.0,
    group_by_members: bool = True,
) -> FlowSolution:
    """Route ``sessions`` online (in the given order) and return the solution."""
    solver = OnlineMinCongestion(routing, OnlineConfig(sigma=sigma))
    solver.accept_all(sessions)
    return solver.solution(group_by_members=group_by_members)
