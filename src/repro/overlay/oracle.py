"""The minimum overlay spanning tree oracle.

Every algorithm in the paper (MaxFlow, MaxConcurrentFlow, the randomized
rounding pre-step, and Online-MinCongestion) repeatedly asks the same
question:

    *Given the current per-edge length function ``d_e``, which spanning
    tree of session ``S_i``'s overlay graph has minimum total length?*

Under fixed IP routing the overlay edge lengths are linear in ``d_e``
through a fixed pair-by-edge incidence matrix, so evaluating them is a
single sparse mat-vec.  Under arbitrary (dynamic) routing, the overlay
edge between two members is the *shortest* path under ``d_e``, so every
oracle call runs Dijkstra from each member and reconstructs only the
``|S| - 1`` paths that end up in the tree (Section V-B of the paper).

The oracle also counts its own invocations; the paper's Tables II and IV
report running time as "number of MST operations", and we reproduce that
column from these counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.overlay.mst import minimum_spanning_tree_pairs
from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.routing.base import PairKey, RoutingModel, pair_key
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class OracleResult:
    """Result of one minimum-overlay-spanning-tree computation.

    Attributes
    ----------
    tree:
        The minimum overlay spanning tree found.
    length:
        Its total length ``sum_e n_e(t) d_e`` under the queried lengths.
    """

    tree: OverlayTree
    length: float


class MinimumOverlayTreeOracle:
    """Minimum overlay spanning tree computation for one session.

    Parameters
    ----------
    session:
        The overlay session whose trees are being optimised over.
    routing:
        Either a :class:`FixedIPRouting` (paper Sections II–IV) or a
        :class:`DynamicRouting` (Section V) instance.
    """

    def __init__(self, session: Session, routing: RoutingModel) -> None:
        session.validate_against(routing.network)
        self._session = session
        self._routing = routing
        self._network = routing.network
        self._members = list(session.members)
        self._call_count = 0

        n = len(self._members)
        self._triu_rows, self._triu_cols = np.triu_indices(n, k=1)

        if isinstance(routing, FixedIPRouting):
            self._fixed = True
            self._pairs = routing.member_pairs(self._members)
            self._incidence = routing.incidence_for_members(self._members)
            self._paths = routing.paths_for_pairs(self._pairs)
            # Map canonical pair -> row index in the incidence matrix.
            self._pair_row = {pk: r for r, pk in enumerate(self._pairs)}
        elif isinstance(routing, DynamicRouting):
            self._fixed = False
            self._pairs = [
                pair_key(self._members[i], self._members[j])
                for i in range(len(self._members))
                for j in range(i + 1, len(self._members))
            ]
            self._incidence = None
            self._paths = None
            self._pair_row = {}
        else:
            raise ConfigurationError(
                f"unsupported routing model {type(routing).__name__}"
            )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def session(self) -> Session:
        """The session this oracle serves."""
        return self._session

    @property
    def routing(self) -> RoutingModel:
        """The routing model in effect."""
        return self._routing

    @property
    def call_count(self) -> int:
        """Number of minimum-spanning-tree operations performed so far."""
        return self._call_count

    def reset_call_count(self) -> None:
        """Reset the MST-operation counter (used between experiment stages)."""
        self._call_count = 0

    def max_route_length(self) -> int:
        """``U`` — the longest unicast route (in hops) among member pairs."""
        return self._routing.max_route_hops(self._members)

    def covered_edges(self) -> np.ndarray:
        """Physical edges reachable by this session's overlay (fixed routes)."""
        if self._fixed:
            usage = np.asarray(self._incidence.sum(axis=0)).ravel()
            return np.flatnonzero(usage > 0)
        # For dynamic routing use hop-metric routes as the session footprint.
        return DynamicRouting(self._network).covered_edges(self._members)

    # ------------------------------------------------------------------
    # the oracle
    # ------------------------------------------------------------------
    def minimum_tree(self, edge_lengths: np.ndarray) -> OracleResult:
        """Minimum overlay spanning tree under ``edge_lengths``.

        This is the operation counted in the paper's "running time
        (number of MST operations)" rows.
        """
        self._call_count += 1
        lengths = np.asarray(edge_lengths, dtype=float)
        members = self._members
        n = len(members)
        index_of = {m: i for i, m in enumerate(members)}

        if self._fixed:
            pair_lengths = self._incidence @ lengths
            weight = np.zeros((n, n), dtype=float)
            weight[self._triu_rows, self._triu_cols] = pair_lengths
            weight[self._triu_cols, self._triu_rows] = pair_lengths
            tree_index_pairs = minimum_spanning_tree_pairs(weight)
            overlay_edges = [
                pair_key(members[i], members[j]) for i, j in tree_index_pairs
            ]
            tree = OverlayTree.from_paths(
                members, overlay_edges, self._paths, self._network.num_edges
            )
        else:
            weight = self._routing.pair_lengths(members, lengths)
            tree_index_pairs = minimum_spanning_tree_pairs(weight)
            overlay_edges = [
                pair_key(members[i], members[j]) for i, j in tree_index_pairs
            ]
            paths = self._routing.paths_for_pairs(overlay_edges, lengths)
            tree = OverlayTree.from_paths(
                members, overlay_edges, paths, self._network.num_edges
            )
        return OracleResult(tree=tree, length=tree.length(lengths))

    def normalized_length(self, result: OracleResult, max_session_size: int) -> float:
        """Paper's normalised tree length weighted by receiver counts.

        ``d(t) * (|Smax| - 1) / (|S_i| - 1)`` — the quantity the MaxFlow
        algorithm compares across sessions (line 6 of Table I).
        """
        if max_session_size < 2:
            raise ConfigurationError("max_session_size must be at least 2")
        return result.length * (max_session_size - 1) / (self._session.size - 1)


def build_oracles(
    sessions: Sequence[Session], routing: RoutingModel
) -> List[MinimumOverlayTreeOracle]:
    """Construct one oracle per session over a shared routing model."""
    return [MinimumOverlayTreeOracle(s, routing) for s in sessions]


def total_oracle_calls(oracles: Sequence[MinimumOverlayTreeOracle]) -> int:
    """Total MST operations across a set of oracles."""
    return int(sum(o.call_count for o in oracles))
