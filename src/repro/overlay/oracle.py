"""The minimum overlay spanning tree oracle.

Every algorithm in the paper (MaxFlow, MaxConcurrentFlow, the randomized
rounding pre-step, and Online-MinCongestion) repeatedly asks the same
question:

    *Given the current per-edge length function ``d_e``, which spanning
    tree of session ``S_i``'s overlay graph has minimum total length?*

Under fixed IP routing the overlay edge lengths are linear in ``d_e``
through a fixed pair-by-edge incidence matrix, so evaluating them is a
single sparse mat-vec.  Under arbitrary (dynamic) routing, the overlay
edge between two members is the *shortest* path under ``d_e``
(Section V-B of the paper): the oracle runs **one** multi-source
Dijkstra from the members, keeps its distance *and* predecessor rows
(:class:`~repro.routing.shortest_path.ShortestPathQuery`), weights the
overlay MST from the distances, and reconstructs only the ``|S| - 1``
chosen paths from the same predecessor rows.  The pre-fast-path
pipeline — a distances-only run followed by a fresh single-source
Dijkstra per tree source — is kept behind
:func:`configure_dynamic_fastpath` as the ablation baseline; both
produce bit-identical trees (same rows, same paths).

The oracle also counts its own invocations; the paper's Tables II and IV
report running time as "number of MST operations", and we reproduce that
column from these counters.

**Tree memoization.**  The paper's "number of trees" tables show that a
run concentrates its flow on a handful of distinct trees even though it
performs thousands of MST operations, so the same tree is rebuilt over
and over.  Under fixed IP routing the tree is fully determined by the
MST's overlay-edge index pairs; under dynamic routing it is determined by
those pairs plus the node sequences of the chosen shortest paths.  The
oracle keys a per-session cache on exactly that, so repeated trees skip
:meth:`OverlayTree.from_paths` (the union-find spanning-tree check and
the ``np.add.at`` usage accumulation) entirely.  ``call_count`` — the
paper's "MST operations" metric — is incremented on cache hits exactly as
before, and cached results are bit-identical to freshly built ones.

**Tree ledger.**  When the engine runs its stacked path, every oracle is
attached (:meth:`MinimumOverlayTreeOracle.attach_ledger`) to a shared
:class:`~repro.core.engine.ledger.TreeLedger`, and every tree the oracle
constructs is registered there as well as in its private memo — the two
stores share identity through :meth:`OverlayTree.canonical_key`.  The
``select_tree*`` methods return the chosen tree *without* evaluating its
length, so a batched caller can compute a whole round's tree lengths as
one ``lengths @ M`` product over ledger columns instead of per-tree
reductions; the ``minimum_tree*`` methods wrap them and keep the
classic ``(tree, length)`` contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.overlay.mst import minimum_spanning_tree_pairs
from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.routing.base import PairKey, RoutingModel, pair_key
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class OracleResult:
    """Result of one minimum-overlay-spanning-tree computation.

    Attributes
    ----------
    tree:
        The minimum overlay spanning tree found.
    length:
        Its total length ``sum_e n_e(t) d_e`` under the queried lengths.
    """

    tree: OverlayTree
    length: float


_MEMOIZE_TREES_DEFAULT = True
_DYNAMIC_FASTPATH_DEFAULT = True


def configure_tree_memoization(enabled: bool) -> bool:
    """Set the process-wide default for oracle tree memoization.

    Returns the previous default.  Oracles resolve the default at
    construction time; existing oracles are unaffected.  Memoization
    never changes results (cached trees are the exact objects a fresh
    construction would produce) — the switch exists for equivalence
    tests and perf ablations.
    """
    global _MEMOIZE_TREES_DEFAULT
    previous = _MEMOIZE_TREES_DEFAULT
    _MEMOIZE_TREES_DEFAULT = bool(enabled)
    return previous


def tree_memoization_default() -> bool:
    """Current process-wide default for oracle tree memoization."""
    return _MEMOIZE_TREES_DEFAULT


def configure_dynamic_fastpath(enabled: bool) -> bool:
    """Set the process-wide default for the one-Dijkstra dynamic oracle.

    Returns the previous default.  Oracles resolve the default at
    construction time; existing oracles are unaffected.  ``False``
    restores the pre-change pipeline (a distances-only multi-source
    Dijkstra, then a fresh single-source Dijkstra per tree source) —
    kept purely as the equivalence-test reference and perf-ablation
    baseline; results are bit-identical either way.

    The default is process-wide only: it does not propagate to pool
    workers (``prescale_jobs``, ``solve_many``, cluster workers), which
    re-import with the fast path on.  Ablation runs should stay
    in-process serial, or pass ``dynamic_fastpath`` explicitly through
    :func:`build_oracles`.
    """
    global _DYNAMIC_FASTPATH_DEFAULT
    previous = _DYNAMIC_FASTPATH_DEFAULT
    _DYNAMIC_FASTPATH_DEFAULT = bool(enabled)
    return previous


def dynamic_fastpath_default() -> bool:
    """Current process-wide default for the one-Dijkstra dynamic oracle."""
    return _DYNAMIC_FASTPATH_DEFAULT


class MinimumOverlayTreeOracle:
    """Minimum overlay spanning tree computation for one session.

    Parameters
    ----------
    session:
        The overlay session whose trees are being optimised over.
    routing:
        Either a :class:`FixedIPRouting` (paper Sections II–IV) or a
        :class:`DynamicRouting` (Section V) instance.
    memoize:
        Cache constructed trees keyed by their defining data (overlay
        index pairs, plus path node sequences under dynamic routing).
        ``None`` uses the process-wide default (on).
    dynamic_fastpath:
        Serve dynamic-routing calls with one retained Dijkstra
        (:meth:`minimum_tree_from_query`) instead of the pre-change
        multi-Dijkstra loop.  ``None`` uses the process-wide default
        (on).  Purely a performance switch; results are bit-identical.
    """

    def __init__(
        self,
        session: Session,
        routing: RoutingModel,
        memoize: Optional[bool] = None,
        dynamic_fastpath: Optional[bool] = None,
    ) -> None:
        session.validate_against(routing.network)
        self._session = session
        self._routing = routing
        self._network = routing.network
        self._members = list(session.members)
        self._call_count = 0
        self._memoize = _MEMOIZE_TREES_DEFAULT if memoize is None else bool(memoize)
        self._dynamic_fastpath = (
            _DYNAMIC_FASTPATH_DEFAULT
            if dynamic_fastpath is None
            else bool(dynamic_fastpath)
        )
        self._tree_cache: Dict[Tuple, OverlayTree] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._ledger = None

        n = len(self._members)
        self._triu_rows, self._triu_cols = np.triu_indices(n, k=1)
        # Preallocated symmetric MST weight matrix, refilled per call.
        self._weight = np.zeros((n, n), dtype=float)

        if isinstance(routing, FixedIPRouting):
            self._fixed = True
            self._pairs = routing.member_pairs(self._members)
            self._incidence = routing.incidence_for_members(self._members)
            self._paths = routing.paths_for_pairs(self._pairs)
            # Map canonical pair -> row index in the incidence matrix.
            self._pair_row = {pk: r for r, pk in enumerate(self._pairs)}
        elif isinstance(routing, DynamicRouting):
            self._fixed = False
            self._pairs = [
                pair_key(self._members[i], self._members[j])
                for i in range(len(self._members))
                for j in range(i + 1, len(self._members))
            ]
            self._incidence = None
            self._paths = None
            self._pair_row = {}
        else:
            raise ConfigurationError(
                f"unsupported routing model {type(routing).__name__}"
            )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def session(self) -> Session:
        """The session this oracle serves."""
        return self._session

    @property
    def routing(self) -> RoutingModel:
        """The routing model in effect."""
        return self._routing

    @property
    def call_count(self) -> int:
        """Number of minimum-spanning-tree operations performed so far."""
        return self._call_count

    def reset_call_count(self) -> None:
        """Reset the MST-operation counter (used between experiment stages)."""
        self._call_count = 0

    @property
    def memoize(self) -> bool:
        """Whether tree construction memoization is enabled."""
        return self._memoize

    @property
    def cache_hits(self) -> int:
        """Oracle calls that reused a previously constructed tree."""
        return self._cache_hits

    @property
    def cache_misses(self) -> int:
        """Oracle calls that had to construct a new tree (memoized mode)."""
        return self._cache_misses

    def cache_info(self) -> Dict[str, int]:
        """Memoization counters (hits, misses, distinct cached trees)."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._tree_cache),
        }

    def clear_tree_cache(self) -> None:
        """Drop all cached trees and reset the hit/miss counters."""
        self._tree_cache.clear()
        self._cache_hits = 0
        self._cache_misses = 0

    def attach_ledger(self, ledger) -> None:
        """Register this oracle's trees in a shared tree ledger.

        Every tree the oracle has already memoized is registered
        immediately (in memo insertion order); every tree it constructs
        from now on is registered as it is built.  Registration is
        content-addressed by :meth:`OverlayTree.canonical_key`, so the
        ledger and the memo agree on tree identity and re-registration
        is a dict hit.  Attaching never changes oracle results.
        """
        self._ledger = ledger
        for tree in self._tree_cache.values():
            ledger.register(tree)

    @property
    def ledger(self):
        """The attached :class:`TreeLedger`, or ``None``."""
        return self._ledger

    @property
    def is_fixed(self) -> bool:
        """Whether the routing model is fixed (precomputable incidence)."""
        return self._fixed

    @property
    def dynamic_fastpath(self) -> bool:
        """Whether dynamic calls use the one-Dijkstra retained query."""
        return self._dynamic_fastpath

    @property
    def members(self) -> List[int]:
        """The session's members, in oracle (session) order.

        The dynamic batched front unions these across oracles to run one
        shared Dijkstra per all-session query round.
        """
        return list(self._members)

    @property
    def incidence(self):
        """The sparse pair-by-edge incidence matrix (fixed routing only).

        The :class:`~repro.core.engine.batch.BatchedOracleFront` stacks
        these across sessions to serve all-session query rounds with one
        mat-vec.
        """
        if not self._fixed:
            raise ConfigurationError(
                "the incidence matrix exists only under fixed routing"
            )
        return self._incidence

    def max_route_length(self) -> int:
        """``U`` — the longest unicast route (in hops) among member pairs."""
        return self._routing.max_route_hops(self._members)

    def covered_edges(self) -> np.ndarray:
        """Physical edges reachable by this session's overlay (fixed routes)."""
        if self._fixed:
            usage = np.asarray(self._incidence.sum(axis=0)).ravel()
            return np.flatnonzero(usage > 0)
        # For dynamic routing use hop-metric routes as the session
        # footprint, served by the oracle's own routing model (the model
        # is stateless per call, so reuse is free and construction-free).
        return self._routing.covered_edges(self._members)

    # ------------------------------------------------------------------
    # the oracle
    # ------------------------------------------------------------------
    def minimum_tree(self, edge_lengths: np.ndarray) -> OracleResult:
        """Minimum overlay spanning tree under ``edge_lengths``.

        This is the operation counted in the paper's "running time
        (number of MST operations)" rows.
        """
        lengths = np.asarray(edge_lengths, dtype=float)
        members = self._members

        if self._fixed:
            return self.minimum_tree_precomputed(self._incidence @ lengths, lengths)

        if self._dynamic_fastpath:
            # One Dijkstra: the retained query serves both the MST
            # weights and the chosen tree's path reconstructions.
            return self.minimum_tree_from_query(
                self._routing.query(members, lengths), lengths
            )

        # Pre-fast-path pipeline (ablation baseline): a distances-only
        # multi-source run, then a fresh single-source Dijkstra per tree
        # source inside paths_for_pairs.
        self._call_count += 1
        weight = self._routing.pair_lengths(members, lengths)
        tree_index_pairs = minimum_spanning_tree_pairs(weight, validate=False)
        overlay_edges = [
            pair_key(members[i], members[j]) for i, j in tree_index_pairs
        ]
        paths = self._routing.paths_for_pairs(overlay_edges, lengths)
        tree = self._dynamic_tree(overlay_edges, paths)
        return OracleResult(tree=tree, length=tree.length(lengths))

    def select_tree(self, edge_lengths: np.ndarray) -> OverlayTree:
        """The minimum tree under ``edge_lengths``, without its length.

        The stacked engine path selects a whole round's trees first and
        evaluates all their lengths as one ledger product, so the
        per-tree reduction inside :meth:`minimum_tree` is skipped here.
        Counts as one MST operation, exactly like :meth:`minimum_tree`;
        the legacy dynamic pipeline (fast path off) has no tree-only
        form and is served through :meth:`minimum_tree` instead.
        """
        lengths = np.asarray(edge_lengths, dtype=float)
        if self._fixed:
            return self.select_tree_precomputed(self._incidence @ lengths)
        if self._dynamic_fastpath:
            return self.select_tree_from_query(
                self._routing.query(self._members, lengths)
            )
        raise ConfigurationError(
            "tree-only selection requires fixed routing or the dynamic fast path"
        )

    def select_tree_from_query(self, query) -> OverlayTree:
        """Tree-only form of :meth:`minimum_tree_from_query`.

        ``query`` is a
        :class:`~repro.routing.shortest_path.ShortestPathQuery` whose
        sources include every session member — either this oracle's own
        per-call run or the batched front's shared union run.  Distances
        weight the overlay MST; the chosen tree's paths are rebuilt from
        the same predecessor rows, so outputs are bit-identical to the
        multi-Dijkstra pipeline (scipy computes source rows
        independently).  Counts as one MST operation, exactly like
        :meth:`minimum_tree`.
        """
        if self._fixed:
            raise ConfigurationError(
                "retained Dijkstra queries apply to dynamic routing only"
            )
        self._call_count += 1
        members = self._members
        weight = self._routing.pair_lengths_from_query(query, members)
        tree_index_pairs = minimum_spanning_tree_pairs(weight, validate=False)
        overlay_edges = [
            pair_key(members[i], members[j]) for i, j in tree_index_pairs
        ]
        paths = query.paths_for_pairs(overlay_edges)
        return self._dynamic_tree(overlay_edges, paths)

    def minimum_tree_from_query(
        self, query, edge_lengths: np.ndarray
    ) -> OracleResult:
        """Dynamic-routing oracle served from a retained Dijkstra query.

        :meth:`select_tree_from_query` plus the tree's length under
        ``edge_lengths`` — the classic ``(tree, length)`` contract.
        """
        tree = self.select_tree_from_query(query)
        lengths = np.asarray(edge_lengths, dtype=float)
        return OracleResult(tree=tree, length=tree.length(lengths))

    def _dynamic_tree(self, overlay_edges, paths) -> OverlayTree:
        """Shared tail of both dynamic branches: memoize key + build."""
        # Under dynamic routing the overlay edges alone do not pin down
        # the physical realisation — include the path node sequences in
        # the key.  Sorted, so the key is independent of Prim's
        # discovery order.
        key = (
            tuple(sorted((pk, paths[pk].nodes) for pk in overlay_edges))
            if self._memoize
            else None
        )
        return self._cached_tree(
            key,
            lambda: OverlayTree.from_paths(
                self._members, overlay_edges, paths, self._network.num_edges
            ),
        )

    def select_tree_precomputed(self, pair_lengths: np.ndarray) -> OverlayTree:
        """Fixed-routing tree selection given precomputed pair lengths.

        ``pair_lengths`` must equal ``incidence @ edge_lengths`` (row
        per :meth:`~repro.routing.ip_routing.FixedIPRouting.member_pairs`
        entry) — the batched oracle front computes it for all sessions in
        one stacked mat-vec and hands each oracle its slice.  Counts as
        one MST operation, exactly like :meth:`minimum_tree`.
        """
        if not self._fixed:
            raise ConfigurationError(
                "precomputed pair lengths apply to fixed routing only"
            )
        self._call_count += 1
        members = self._members
        # The preallocated matrix is exactly symmetric by construction
        # (both triangles written from one vector), so the MST step
        # can skip its validation pass.
        weight = self._weight
        weight[self._triu_rows, self._triu_cols] = pair_lengths
        weight[self._triu_cols, self._triu_rows] = pair_lengths
        tree_index_pairs = minimum_spanning_tree_pairs(weight, validate=False)
        # Sort so the key is independent of Prim's discovery order: the
        # same tree reached from different length functions must hit the
        # same cache entry.  Fixed routes pin down the physical
        # realisation, so the index pairs alone suffice.
        key = tuple(sorted(tree_index_pairs)) if self._memoize else None
        return self._cached_tree(
            key,
            lambda: OverlayTree.from_paths(
                members,
                [pair_key(members[i], members[j]) for i, j in tree_index_pairs],
                self._paths,
                self._network.num_edges,
            ),
        )

    def minimum_tree_precomputed(
        self, pair_lengths: np.ndarray, edge_lengths: np.ndarray
    ) -> OracleResult:
        """Fixed-routing oracle given precomputed overlay pair lengths.

        :meth:`select_tree_precomputed` plus the tree's length under
        ``edge_lengths`` — the classic ``(tree, length)`` contract.
        """
        tree = self.select_tree_precomputed(pair_lengths)
        lengths = np.asarray(edge_lengths, dtype=float)
        return OracleResult(tree=tree, length=tree.length(lengths))

    def _cached_tree(self, key: Optional[Tuple], build) -> OverlayTree:
        """Memoized tree construction shared by both routing branches.

        ``key=None`` (memoization off) builds unconditionally; otherwise
        a hit returns the cached object and a miss builds, stores and
        counts.  The builder runs only on a miss, so the fixed-routing
        hot path never recomputes overlay pair keys for cached trees.
        """
        if key is not None:
            tree = self._tree_cache.get(key)
            if tree is not None:
                self._cache_hits += 1
                return tree
        tree = build()
        if key is not None:
            self._tree_cache[key] = tree
            self._cache_misses += 1
        if self._ledger is not None:
            # Content-addressed, so un-memoized rebuilds of a known tree
            # land on the existing column.
            self._ledger.register(tree)
        return tree

    def normalized_length(self, result: OracleResult, max_session_size: int) -> float:
        """Paper's normalised tree length weighted by receiver counts.

        ``d(t) * (|Smax| - 1) / (|S_i| - 1)`` — the quantity the MaxFlow
        algorithm compares across sessions (line 6 of Table I).
        """
        if max_session_size < 2:
            raise ConfigurationError("max_session_size must be at least 2")
        return result.length * (max_session_size - 1) / (self._session.size - 1)


def build_oracles(
    sessions: Sequence[Session],
    routing: RoutingModel,
    memoize: Optional[bool] = None,
    dynamic_fastpath: Optional[bool] = None,
) -> List[MinimumOverlayTreeOracle]:
    """Construct one oracle per session over a shared routing model."""
    return [
        MinimumOverlayTreeOracle(
            s, routing, memoize=memoize, dynamic_fastpath=dynamic_fastpath
        )
        for s in sessions
    ]


def total_oracle_calls(oracles: Sequence[MinimumOverlayTreeOracle]) -> int:
    """Total MST operations across a set of oracles."""
    return int(sum(o.call_count for o in oracles))
