"""Overlay sessions, trees, and the spanning-tree oracle.

This subpackage contains the overlay-level abstractions from Section II
of the paper:

* :class:`Session` — a multicast session ``S_i`` (a source, a member set,
  and a demand),
* :class:`OverlayTree` — a spanning tree of the complete overlay graph
  ``G_i`` over a session's members, together with the physical paths its
  overlay edges map to and the resulting per-physical-edge usage counts
  ``n_e(t)``,
* :class:`MinimumOverlayTreeOracle` — the "minimum overlay spanning tree"
  computation that all four algorithms (Tables I, III, V, VI) use as
  their inner oracle, for both fixed-IP and dynamic routing,
* :mod:`tree_packing` — the packing-spanning-trees problem (Section II-C)
  with the Tutte/Nash-Williams partition bound, used to validate the
  problem reformulation.
"""

from repro.overlay.session import Session, random_session, random_sessions
from repro.overlay.tree import OverlayTree
from repro.overlay.mst import minimum_spanning_tree_pairs
from repro.overlay.oracle import (
    MinimumOverlayTreeOracle,
    OracleResult,
    configure_tree_memoization,
    tree_memoization_default,
)
from repro.overlay.tree_packing import (
    partition_bound,
    best_partition,
    pack_spanning_trees_lp,
    pack_spanning_trees_greedy,
    enumerate_spanning_trees,
)

__all__ = [
    "Session",
    "random_session",
    "random_sessions",
    "OverlayTree",
    "minimum_spanning_tree_pairs",
    "MinimumOverlayTreeOracle",
    "OracleResult",
    "configure_tree_memoization",
    "tree_memoization_default",
    "partition_bound",
    "best_partition",
    "pack_spanning_trees_lp",
    "pack_spanning_trees_greedy",
    "enumerate_spanning_trees",
]
