"""Packing spanning trees (paper Section II-C).

Given a session's *overlay graph* ``G_i`` — the complete graph over the
session members where the weight of edge ``(v_m, v_n)`` is the amount of
traffic ``f(v_m, v_n)`` routed between those two members — the packing
spanning tree problem asks for fractional tree rates whose sum is maximal
while the total rate crossing each overlay edge stays within its weight.

Tutte and Nash-Williams showed the optimum equals

    min over partitions P of G_i of  f(P) / (|P| - 1)

where ``f(P)`` is the total weight of edges crossing the partition.  The
paper uses this as the separation oracle that makes the reformulated
problems M1'/M2' polynomially solvable.  We provide:

* :func:`partition_bound` / :func:`best_partition` — exact evaluation of
  the Tutte/Nash-Williams bound by enumerating set partitions (practical
  for the session sizes where exactness is needed, i.e. tests and the
  Fig. 1 example),
* :func:`pack_spanning_trees_lp` — the exact LP over all spanning trees of
  the overlay graph (Cayley enumeration via Prüfer sequences),
* :func:`pack_spanning_trees_greedy` — a fast greedy packing used as a
  lower-bound sanity check.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.util.errors import ConfigurationError, InvalidSessionError

PairKey = Tuple[int, int]


def _canonical_weights(weights: Dict[PairKey, float], members: Sequence[int]) -> Dict[PairKey, float]:
    out: Dict[PairKey, float] = {}
    member_set = set(int(m) for m in members)
    for (u, v), w in weights.items():
        u, v = int(u), int(v)
        if u == v:
            raise InvalidSessionError("overlay weights cannot contain self-loops")
        if u not in member_set or v not in member_set:
            raise InvalidSessionError(f"weight for ({u}, {v}) references a non-member")
        if w < 0:
            raise InvalidSessionError(f"negative overlay weight for ({u}, {v})")
        key = (min(u, v), max(u, v))
        out[key] = out.get(key, 0.0) + float(w)
    return out


# ----------------------------------------------------------------------
# partitions and the Tutte / Nash-Williams bound
# ----------------------------------------------------------------------
def iter_partitions(items: Sequence[int]) -> Iterator[List[List[int]]]:
    """Iterate over all set partitions of ``items`` (restricted growth strings)."""
    items = list(items)
    n = len(items)
    if n == 0:
        yield []
        return

    def helper(index: int, blocks: List[List[int]]) -> Iterator[List[List[int]]]:
        if index == n:
            yield [list(b) for b in blocks]
            return
        item = items[index]
        for b in blocks:
            b.append(item)
            yield from helper(index + 1, blocks)
            b.pop()
        blocks.append([item])
        yield from helper(index + 1, blocks)
        blocks.pop()

    yield from helper(0, [])


def crossing_weight(
    partition: Sequence[Sequence[int]], weights: Dict[PairKey, float]
) -> float:
    """Total weight of overlay edges whose endpoints lie in different blocks."""
    block_of = {}
    for b_index, block in enumerate(partition):
        for node in block:
            block_of[int(node)] = b_index
    total = 0.0
    for (u, v), w in weights.items():
        if block_of.get(u) != block_of.get(v):
            total += w
    return total


def best_partition(
    members: Sequence[int], weights: Dict[PairKey, float]
) -> Tuple[List[List[int]], float]:
    """Partition minimising ``f(P) / (|P| - 1)`` and its value.

    Only partitions with at least two blocks are considered (the bound is
    undefined for the trivial one-block partition).  Exponential in the
    number of members; intended for validation and small sessions.
    """
    members = [int(m) for m in members]
    if len(members) < 2:
        raise InvalidSessionError("need at least two members")
    if len(members) > 12:
        raise ConfigurationError(
            "exact partition enumeration is limited to 12 members "
            f"(got {len(members)}); use the LP or greedy packing instead"
        )
    w = _canonical_weights(weights, members)
    best_value = float("inf")
    best: List[List[int]] = [[m] for m in members]
    for partition in iter_partitions(members):
        parts = len(partition)
        if parts < 2:
            continue
        value = crossing_weight(partition, w) / (parts - 1)
        if value < best_value - 1e-12:
            best_value = value
            best = [sorted(block) for block in partition]
    return best, best_value


def partition_bound(members: Sequence[int], weights: Dict[PairKey, float]) -> float:
    """The Tutte/Nash-Williams value ``min_P f(P) / (|P| - 1)``."""
    _, value = best_partition(members, weights)
    return value


# ----------------------------------------------------------------------
# exact packing via Prüfer enumeration + LP
# ----------------------------------------------------------------------
def enumerate_spanning_trees(members: Sequence[int]) -> List[Tuple[PairKey, ...]]:
    """All spanning trees of the complete graph over ``members``.

    Uses the Prüfer correspondence: every sequence of length ``n - 2``
    over the members corresponds to exactly one labelled tree, so the
    count is Cayley's ``n^(n-2)``.  Limited to 8 members (8^6 = 262144
    trees) to keep memory bounded.
    """
    members = [int(m) for m in members]
    n = len(members)
    if n < 2:
        raise InvalidSessionError("need at least two members")
    if n == 2:
        return [((min(members), max(members)),)]
    if n > 8:
        raise ConfigurationError(
            f"exact tree enumeration is limited to 8 members, got {n}"
        )

    trees: List[Tuple[PairKey, ...]] = []
    for prufer in itertools.product(members, repeat=n - 2):
        trees.append(tuple(sorted(prufer_to_tree(list(prufer), members))))
    return trees


def prufer_to_tree(prufer: Sequence[int], members: Sequence[int]) -> List[PairKey]:
    """Decode a Prüfer sequence (over member labels) into tree edges."""
    members = [int(m) for m in members]
    prufer = [int(p) for p in prufer]
    degree = {m: 1 for m in members}
    for p in prufer:
        if p not in degree:
            raise InvalidSessionError(f"Prüfer entry {p} is not a member")
        degree[p] += 1
    edges: List[PairKey] = []
    import heapq

    leaves = [m for m in members if degree[m] == 1]
    heapq.heapify(leaves)
    for p in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((min(leaf, p), max(leaf, p)))
        degree[p] -= 1
        if degree[p] == 1:
            heapq.heappush(leaves, p)
    last = sorted(leaves)
    edges.append((min(last[0], last[1]), max(last[0], last[1])))
    return edges


def pack_spanning_trees_lp(
    members: Sequence[int], weights: Dict[PairKey, float]
) -> Tuple[float, Dict[Tuple[PairKey, ...], float]]:
    """Exact maximum fractional spanning-tree packing via linear programming.

    Maximises the total tree rate subject to the per-overlay-edge weight
    constraints of problem S (paper eq. 5).  Returns the optimum and the
    non-zero tree rates.  Exponential in the session size (all trees are
    enumerated); use for validation and small sessions only.
    """
    from scipy.optimize import linprog

    members = [int(m) for m in members]
    w = _canonical_weights(weights, members)
    trees = enumerate_spanning_trees(members)
    pairs = [
        (members[i], members[j]) if members[i] < members[j] else (members[j], members[i])
        for i in range(len(members))
        for j in range(i + 1, len(members))
    ]
    pair_index = {pk: r for r, pk in enumerate(pairs)}

    # Constraint matrix: A[p, t] = 1 if tree t uses overlay edge p.
    a_ub = np.zeros((len(pairs), len(trees)))
    for t_index, tree in enumerate(trees):
        for edge in tree:
            a_ub[pair_index[edge], t_index] = 1.0
    b_ub = np.asarray([w.get(pk, 0.0) for pk in pairs], dtype=float)
    c = -np.ones(len(trees))

    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    if not result.success:  # pragma: no cover - defensive
        raise InvalidSessionError(f"tree packing LP failed: {result.message}")
    rates = {
        trees[t]: float(x) for t, x in enumerate(result.x) if x > 1e-9
    }
    return float(-result.fun), rates


def pack_spanning_trees_greedy(
    members: Sequence[int],
    weights: Dict[PairKey, float],
    max_trees: int = 64,
) -> Tuple[float, Dict[Tuple[PairKey, ...], float]]:
    """Greedy spanning-tree packing (maximum-bottleneck trees, iteratively).

    Repeatedly extracts the spanning tree maximising its bottleneck
    residual weight (computed with a maximum-spanning-tree on residual
    weights), routes that bottleneck amount on it, and subtracts.  Always
    feasible, generally below the LP optimum; used as a fast lower bound
    and in examples.
    """
    members = [int(m) for m in members]
    n = len(members)
    residual = dict(_canonical_weights(weights, members))
    index_of = {m: i for i, m in enumerate(members)}
    total = 0.0
    chosen: Dict[Tuple[PairKey, ...], float] = {}

    for _ in range(max_trees):
        # Build residual weight matrix; missing pairs have zero residual.
        matrix = np.zeros((n, n))
        for (u, v), w in residual.items():
            matrix[index_of[u], index_of[v]] = matrix[index_of[v], index_of[u]] = w
        # Maximum-bottleneck spanning tree == maximum spanning tree by weight.
        # Reuse Prim on negated weights shifted to be non-negative.
        if matrix.max() <= 0:
            break
        from repro.overlay.mst import minimum_spanning_tree_pairs

        shifted = matrix.max() - matrix
        np.fill_diagonal(shifted, 0.0)
        try:
            tree_pairs = minimum_spanning_tree_pairs(shifted)
        except InvalidSessionError:
            break
        edges = tuple(
            sorted(
                (min(members[i], members[j]), max(members[i], members[j]))
                for i, j in tree_pairs
            )
        )
        bottleneck = min(residual.get(e, 0.0) for e in edges)
        if bottleneck <= 1e-12:
            break
        for e in edges:
            residual[e] = residual.get(e, 0.0) - bottleneck
        chosen[edges] = chosen.get(edges, 0.0) + bottleneck
        total += bottleneck
    return total, chosen
