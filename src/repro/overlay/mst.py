"""Minimum spanning tree on small dense complete graphs.

The spanning-tree oracle works on the complete overlay graph of a session
(at most ~90 members in the paper's experiments), so an ``O(n^2)`` Prim
implementation over a dense weight matrix is both simplest and fastest
here — it avoids the overhead of building a sparse graph object per
oracle call and, unlike :func:`scipy.sparse.csgraph.minimum_spanning_tree`,
treats zero weights as real (very cheap) edges rather than missing ones,
which matters because the exponential length function can underflow to
zero for never-used physical links.

At the session sizes the oracle sees, the per-operation overhead of NumPy
calls dominates an ``O(n^2)`` scan, so matrices up to
``_PYTHON_PRIM_LIMIT`` rows run a plain-Python Prim over ``tolist()``
rows; larger matrices use the vectorised NumPy variant.  Both variants
use identical tie-breaking (first index with the minimum candidate
weight, exactly as ``np.argmin``) so they return the same tree for the
same input.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.util.errors import InvalidSessionError

# Below this size the plain-Python scan beats NumPy's per-call overhead.
# Bench-retuned via the ``prim_crossover`` section of BENCH_core.json
# (``repro.perf.record._timed_prim_crossover``): python wins up to ~64
# rows (0.6x numpy's time at 64), the two arms cross in the flat 96-128
# band, and numpy pulls away above (~1.8x faster at 192).
_PYTHON_PRIM_LIMIT = 96


def _prim_python(w: np.ndarray, n: int) -> List[Tuple[int, int]]:
    """Plain-Python Prim over the rows of ``w`` (fast for small ``n``)."""
    rows = w.tolist()
    inf = float("inf")
    in_tree = [False] * n
    in_tree[0] = True
    best_weight = list(rows[0])
    best_weight[0] = inf
    best_parent = [0] * n
    best_parent[0] = -1

    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        nxt = -1
        best = inf
        for j in range(n):
            if not in_tree[j] and best_weight[j] < best:
                best = best_weight[j]
                nxt = j
        if nxt < 0:
            raise InvalidSessionError(
                "overlay graph is disconnected under the given weights"
            )
        parent = best_parent[nxt]
        edges.append((parent, nxt) if parent < nxt else (nxt, parent))
        in_tree[nxt] = True
        # Relax.
        row = rows[nxt]
        for j in range(n):
            if not in_tree[j] and row[j] < best_weight[j]:
                best_weight[j] = row[j]
                best_parent[j] = nxt
    return edges


def _prim_numpy(w: np.ndarray, n: int) -> List[Tuple[int, int]]:
    """Vectorised Prim (used for large matrices)."""
    in_tree = np.zeros(n, dtype=bool)
    best_weight = np.full(n, np.inf)
    best_parent = np.full(n, -1, dtype=np.int64)

    in_tree[0] = True
    best_weight[:] = w[0]
    best_weight[0] = np.inf
    best_parent[:] = 0
    best_parent[0] = -1

    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        candidates = np.where(~in_tree, best_weight, np.inf)
        nxt = int(np.argmin(candidates))
        if not np.isfinite(candidates[nxt]):
            raise InvalidSessionError(
                "overlay graph is disconnected under the given weights"
            )
        parent = int(best_parent[nxt])
        edges.append((min(parent, nxt), max(parent, nxt)))
        in_tree[nxt] = True
        # Relax.
        improved = (~in_tree) & (w[nxt] < best_weight)
        best_weight[improved] = w[nxt][improved]
        best_parent[improved] = nxt
    return edges


def minimum_spanning_tree_pairs(
    weights: np.ndarray, *, validate: bool = True
) -> List[Tuple[int, int]]:
    """Prim's algorithm over a dense symmetric weight matrix.

    Parameters
    ----------
    weights:
        Square symmetric matrix of non-negative edge weights over a
        complete graph.  ``inf`` entries are treated as missing edges.
    validate:
        Check symmetry and non-negativity before running.  Callers that
        build the matrix symmetric by construction (the spanning-tree
        oracle writes both triangles from one vector every call) pass
        ``False`` to keep the checks off the hot path.

    Returns
    -------
    list of (i, j)
        Index pairs (into the matrix) of the ``n - 1`` tree edges, each
        with ``i < j``.  Deterministic for a given input (ties broken by
        smallest index).

    Raises
    ------
    InvalidSessionError
        If the matrix is not square/symmetric or the graph restricted to
        finite weights is disconnected.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise InvalidSessionError(f"weight matrix must be square, got shape {w.shape}")
    n = w.shape[0]
    if n <= 1:
        return []
    if validate:
        if not np.allclose(w, w.T, equal_nan=True):
            raise InvalidSessionError("weight matrix must be symmetric")
        if np.any(w < 0):
            raise InvalidSessionError("weights must be non-negative")

    if n <= _PYTHON_PRIM_LIMIT:
        return _prim_python(w, n)
    return _prim_numpy(w, n)
