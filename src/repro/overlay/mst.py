"""Minimum spanning tree on small dense complete graphs.

The spanning-tree oracle works on the complete overlay graph of a session
(at most ~90 members in the paper's experiments), so an ``O(n^2)`` Prim
implementation over a dense NumPy weight matrix is both simplest and
fastest here — it avoids the overhead of building a sparse graph object
per oracle call and, unlike :func:`scipy.sparse.csgraph.minimum_spanning_tree`,
treats zero weights as real (very cheap) edges rather than missing ones,
which matters because the exponential length function can underflow to
zero for never-used physical links.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.util.errors import InvalidSessionError


def minimum_spanning_tree_pairs(weights: np.ndarray) -> List[Tuple[int, int]]:
    """Prim's algorithm over a dense symmetric weight matrix.

    Parameters
    ----------
    weights:
        Square symmetric matrix of non-negative edge weights over a
        complete graph.  ``inf`` entries are treated as missing edges.

    Returns
    -------
    list of (i, j)
        Index pairs (into the matrix) of the ``n - 1`` tree edges, each
        with ``i < j``.  Deterministic for a given input (ties broken by
        smallest index).

    Raises
    ------
    InvalidSessionError
        If the matrix is not square/symmetric or the graph restricted to
        finite weights is disconnected.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise InvalidSessionError(f"weight matrix must be square, got shape {w.shape}")
    n = w.shape[0]
    if n == 0:
        return []
    if n == 1:
        return []
    if not np.allclose(w, w.T, equal_nan=True):
        raise InvalidSessionError("weight matrix must be symmetric")
    if np.any(w < 0):
        raise InvalidSessionError("weights must be non-negative")

    in_tree = np.zeros(n, dtype=bool)
    best_weight = np.full(n, np.inf)
    best_parent = np.full(n, -1, dtype=np.int64)

    in_tree[0] = True
    best_weight[:] = w[0]
    best_weight[0] = np.inf
    best_parent[:] = 0
    best_parent[0] = -1

    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        candidates = np.where(~in_tree, best_weight, np.inf)
        nxt = int(np.argmin(candidates))
        if not np.isfinite(candidates[nxt]):
            raise InvalidSessionError(
                "overlay graph is disconnected under the given weights"
            )
        parent = int(best_parent[nxt])
        edges.append((min(parent, nxt), max(parent, nxt)))
        in_tree[nxt] = True
        # Relax.
        improved = (~in_tree) & (w[nxt] < best_weight)
        best_weight[improved] = w[nxt][improved]
        best_parent[improved] = nxt
    return edges
