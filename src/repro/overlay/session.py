"""Overlay multicast sessions.

A session ``S_i`` in the paper is a set of overlay vertices (end systems)
with one source and ``|S_i| - 1`` receivers, and a demand ``dem(i)``.
The commodity associated with a session is the data stream disseminated
from the source to every receiver; a session's *rate* multiplied by its
receiver count is its contribution to the overall throughput objective of
problem M1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.network import PhysicalNetwork
from repro.util.errors import InvalidSessionError
from repro.util.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class Session:
    """An overlay multicast session.

    Attributes
    ----------
    members:
        Overlay vertices participating in the session (source included).
        Order is preserved; the first member is the source by convention
        unless ``source`` says otherwise.
    demand:
        Desired rate ``dem(i)`` used by the concurrent-flow objective.
    source:
        The data source.  Defaults to the first member.  The flow model is
        agnostic to which member is the source (any spanning tree
        disseminates from any root), but examples and reports use it.
    name:
        Optional human-readable label used in reports.
    """

    members: Tuple[int, ...]
    demand: float = 1.0
    source: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        members = tuple(int(m) for m in self.members)
        object.__setattr__(self, "members", members)
        if len(members) < 2:
            raise InvalidSessionError(
                f"a session needs at least 2 members, got {len(members)}"
            )
        if len(set(members)) != len(members):
            raise InvalidSessionError(f"duplicate members in session: {members}")
        if self.demand <= 0:
            raise InvalidSessionError(f"demand must be positive, got {self.demand}")
        src = self.source if self.source is not None else members[0]
        if src not in members:
            raise InvalidSessionError(
                f"source {src} is not a member of the session {members}"
            )
        object.__setattr__(self, "source", int(src))

    @property
    def size(self) -> int:
        """Number of session members ``|S_i|``."""
        return len(self.members)

    @property
    def num_receivers(self) -> int:
        """Number of receivers ``|S_i| - 1``."""
        return len(self.members) - 1

    @property
    def receivers(self) -> Tuple[int, ...]:
        """All members except the source."""
        return tuple(m for m in self.members if m != self.source)

    def validate_against(self, network: PhysicalNetwork) -> None:
        """Check that every member is a vertex of ``network``."""
        for m in self.members:
            if not (0 <= m < network.num_nodes):
                raise InvalidSessionError(
                    f"session member {m} is not a node of the network "
                    f"(num_nodes={network.num_nodes})"
                )

    def with_demand(self, demand: float) -> "Session":
        """Copy of this session with a different demand."""
        return Session(self.members, demand=demand, source=self.source, name=self.name)

    def replicate(self, copies: int, demand: Optional[float] = None) -> List["Session"]:
        """Return ``copies`` sessions with the same member set.

        The online-algorithm experiments of the paper replicate each
        session ``n - 1`` times so that each copy is routed on a single
        tree; this helper produces those copies with distinguishable
        names.
        """
        if copies < 1:
            raise InvalidSessionError(f"copies must be >= 1, got {copies}")
        d = self.demand if demand is None else demand
        base = self.name or "session"
        return [
            Session(self.members, demand=d, source=self.source, name=f"{base}#{i}")
            for i in range(copies)
        ]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "session"
        return f"{label}(|S|={self.size}, dem={self.demand})"


def random_session(
    network: PhysicalNetwork,
    size: int,
    demand: float = 1.0,
    seed: SeedLike = None,
    name: str = "",
    spread_across_levels: bool = True,
) -> Session:
    """Draw a random session of ``size`` members from ``network``.

    When the network carries hierarchy labels (two-level topologies) and
    ``spread_across_levels`` is true, members are spread across ASes in a
    round-robin fashion, matching the paper's assumption that session
    members are distributed across different ASes.
    """
    if size < 2:
        raise InvalidSessionError(f"session size must be >= 2, got {size}")
    if size > network.num_nodes:
        raise InvalidSessionError(
            f"session size {size} exceeds the number of nodes {network.num_nodes}"
        )
    rng = ensure_rng(seed)
    levels = network.node_levels
    if spread_across_levels and levels is not None and len(np.unique(levels)) > 1:
        members: List[int] = []
        unique_levels = [int(lvl) for lvl in rng.permutation(np.unique(levels))]
        pools = {
            lvl: list(rng.permutation(np.flatnonzero(levels == lvl))) for lvl in unique_levels
        }
        level_cycle = 0
        while len(members) < size:
            lvl = unique_levels[level_cycle % len(unique_levels)]
            if pools[lvl]:
                members.append(int(pools[lvl].pop()))
            level_cycle += 1
            if all(not p for p in pools.values()):
                break
        if len(members) < size:
            raise InvalidSessionError(
                f"could not draw {size} distinct members from the network"
            )
    else:
        members = [int(m) for m in rng.choice(network.num_nodes, size=size, replace=False)]
    return Session(tuple(members), demand=demand, name=name)


def random_sessions(
    network: PhysicalNetwork,
    count: int,
    size: int,
    demand: float = 1.0,
    seed: SeedLike = None,
    spread_across_levels: bool = True,
) -> List[Session]:
    """Draw ``count`` independent random sessions of the given size."""
    rng = ensure_rng(seed)
    return [
        random_session(
            network,
            size,
            demand=demand,
            seed=rng,
            name=f"session-{i + 1}",
            spread_across_levels=spread_across_levels,
        )
        for i in range(count)
    ]
