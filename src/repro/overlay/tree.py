"""Overlay multicast trees.

An overlay tree ``t`` for session ``S_i`` is a spanning tree of the
complete overlay graph on the session's members.  Each overlay edge maps
to a unicast path in the physical network, so a physical edge ``e`` may be
traversed by several overlay edges of the same tree; ``n_e(t)`` counts
those traversals and is the quantity the capacity constraints of problems
M1/M2 are written in terms of.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.routing.base import PairKey, pair_key
from repro.routing.paths import UnicastPath
from repro.util.errors import InvalidSessionError


# Edge count above which the sparse tree-length evaluation (gather the
# tree's physical-edge lengths, dot with the precomputed usage values)
# beats the dense full-|E| dot product.  Re-measured via the BENCH_core
# ``tree_length.crossover`` sweep: dense wins below ~1.5k edges (BLAS
# on a short contiguous vector) and the gather wins above; the constant
# stays at the conservative 2048 — mispredicting dense near the
# boundary costs fractions of a microsecond, while the sweep's exact
# crossover moves with footprint size and hardware.  Engine query
# rounds on sparse-regime networks are served through the shared
# :class:`~repro.core.engine.ledger.TreeLedger` (one gather for a whole
# round), retiring the per-tree sparse gathers from those hot paths;
# this per-tree branch remains for loop-mode ablations and standalone
# ``length`` callers, and the ledger mirrors the same dense/sparse
# choice to stay bit-identical per column.
SPARSE_LENGTH_MIN_EDGES = 2048

# Lazily bound ``repro.core.engine.kernels.active_kernels``.  The engine
# package imports this module transitively, so a top-level import here
# would re-enter a partially initialised package; the first ``length``
# call binds the function instead (``False`` marks the unresolved state).
_ACTIVE_KERNELS = False


def _active_kernels():
    """The active kernel backend, or ``None`` while kernels can't load."""
    global _ACTIVE_KERNELS
    if _ACTIVE_KERNELS is False:
        try:
            from repro.core.engine.kernels import active_kernels
        except ImportError:  # pragma: no cover - circular-import window
            return None
        _ACTIVE_KERNELS = active_kernels
    return _ACTIVE_KERNELS()


def _is_spanning_tree(members: Sequence[int], pairs: Sequence[PairKey]) -> bool:
    """Union-find check that ``pairs`` form a spanning tree over ``members``."""
    members = list(members)
    n = len(members)
    if len(pairs) != n - 1:
        return False
    index = {m: i for i, m in enumerate(members)}
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in pairs:
        if u not in index or v not in index:
            return False
        ru, rv = find(index[u]), find(index[v])
        if ru == rv:
            return False
        parent[ru] = rv
    return True


@dataclass(frozen=True)
class OverlayTree:
    """A spanning tree of a session's overlay graph with its physical mapping.

    Attributes
    ----------
    members:
        The session members the tree spans.
    overlay_edges:
        The ``|S| - 1`` overlay edges as canonical member pairs.
    paths:
        Mapping from overlay edge to the unicast path realising it.
    edge_usage:
        Dense vector ``n_e(t)`` over physical edges (traversal counts).
    """

    members: Tuple[int, ...]
    overlay_edges: Tuple[PairKey, ...]
    paths: Mapping[PairKey, UnicastPath] = field(repr=False)
    edge_usage: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        members = tuple(int(m) for m in self.members)
        edges = tuple(pair_key(*p) for p in self.overlay_edges)
        object.__setattr__(self, "members", members)
        object.__setattr__(self, "overlay_edges", edges)
        usage = np.asarray(self.edge_usage, dtype=float)
        object.__setattr__(self, "edge_usage", usage)
        if not _is_spanning_tree(members, edges):
            raise InvalidSessionError(
                f"overlay edges {edges} do not form a spanning tree over {members}"
            )
        missing = [p for p in edges if p not in self.paths]
        if missing:
            raise InvalidSessionError(f"missing unicast paths for overlay edges {missing}")
        # Identity caches.  ``edge_usage`` must not be mutated after
        # construction: the accumulators and the oracle's tree cache key
        # off these precomputed values.  ``_usage_values`` is the sparse
        # companion of ``edge_usage`` — ``n_e(t)`` restricted to the
        # edges the tree actually touches — so per-call tree-length and
        # flow-accumulation work scales with the tree's footprint rather
        # than with ``|E|``.
        physical = np.flatnonzero(usage > 0)
        canonical = (
            tuple(sorted(edges)),
            tuple((int(e), float(usage[e])) for e in physical),
        )
        object.__setattr__(self, "_physical_edges", physical)
        object.__setattr__(self, "_usage_values", usage[physical])
        object.__setattr__(
            self, "_sparse_length", usage.size >= SPARSE_LENGTH_MIN_EDGES
        )
        object.__setattr__(self, "_canonical_key", canonical)
        object.__setattr__(self, "_key_hash", hash(canonical))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(
        cls,
        members: Sequence[int],
        overlay_edges: Sequence[PairKey],
        paths: Mapping[PairKey, UnicastPath],
        num_physical_edges: int,
    ) -> "OverlayTree":
        """Build a tree, deriving ``n_e(t)`` from the supplied paths."""
        usage = np.zeros(num_physical_edges, dtype=float)
        canonical = [pair_key(*p) for p in overlay_edges]
        for pk in canonical:
            path = paths[pk]
            np.add.at(usage, path.edge_ids, 1.0)
        kept_paths: Dict[PairKey, UnicastPath] = {pk: paths[pk] for pk in canonical}
        return cls(
            members=tuple(members),
            overlay_edges=tuple(canonical),
            paths=kept_paths,
            edge_usage=usage,
        )

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of members spanned."""
        return len(self.members)

    @property
    def num_receivers(self) -> int:
        """Number of receivers ``|t| - 1``."""
        return len(self.members) - 1

    @property
    def physical_edges(self) -> np.ndarray:
        """Indices of physical edges with non-zero usage (precomputed)."""
        return self._physical_edges

    @property
    def usage_values(self) -> np.ndarray:
        """``n_e(t)`` restricted to :attr:`physical_edges` (precomputed).

        The sparse counterpart of :attr:`edge_usage`; hot paths pair it
        with ``physical_edges`` for gather/scatter operations whose cost
        is the tree's footprint, not the network size.
        """
        return self._usage_values

    def usage_of(self, edge_id: int) -> float:
        """``n_e(t)`` for a specific physical edge."""
        return float(self.edge_usage[int(edge_id)])

    def length(self, edge_lengths: np.ndarray) -> float:
        """Tree length ``sum_e n_e(t) * d_e`` under a length function.

        On large networks this is a sparse incidence mat-vec: gather the
        lengths of the tree's physical edges and dot with the precomputed
        usage values — the tree touches ``O(|S| * diameter)`` edges while
        the network has ``|E|``, so the per-call cost stays independent
        of the network size.  Below ``SPARSE_LENGTH_MIN_EDGES`` the dense
        dot is cheaper than the gather and is used instead (the choice is
        fixed per tree at construction, so results stay deterministic).

        Under an *ordered* kernel backend (see
        ``repro.core.engine.kernels``) the sum is instead pinned to
        left-to-right sequential accumulation over the stored entries —
        the same order the backend's ledger kernels use — so
        loop-evaluated and ledger-evaluated tree lengths stay
        bit-identical per backend.
        """
        lengths = np.asarray(edge_lengths, dtype=float)
        backend = _active_kernels()
        if backend is not None and backend.ordered:
            return float(
                backend.tree_length(self._physical_edges, self._usage_values, lengths)
            )
        if self._sparse_length:
            return float(np.dot(self._usage_values, lengths[self._physical_edges]))
        return float(np.dot(self.edge_usage, lengths))

    def bottleneck_capacity(self, capacities: np.ndarray) -> float:
        """``min_{e in t} c_e / n_e(t)`` — the rate one unit of tree flow allows.

        This is the amount of traffic the MaxFlow algorithm routes per
        augmentation (line 10 of the paper's Table I).
        """
        caps = np.asarray(capacities, dtype=float)
        used = self.physical_edges
        if used.size == 0:
            return float("inf")
        return float((caps[used] / self._usage_values).min())

    def canonical_key(self) -> Tuple:
        """Hashable identity of the tree (overlay edges + physical realisation).

        Two trees are "the same tree" for the paper's tree-count metrics
        when they use the same overlay edges *and* the same physical
        paths; under fixed IP routing the second condition is implied by
        the first, under dynamic routing it is not.  The key is computed
        once at construction — flow accumulation and tree-set bookkeeping
        hit it on every oracle result.
        """
        return self._canonical_key

    def total_physical_hops(self) -> float:
        """Total number of physical link traversals (the tree's "link stress")."""
        return float(self.edge_usage.sum())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OverlayTree):
            return NotImplemented
        return self._canonical_key == other._canonical_key

    def __hash__(self) -> int:
        return self._key_hash
