"""Link-utilization metrics.

The paper's Figs 4, 9 and 14 plot the distribution of per-link utilization
ratios (restricted to links covered by at least one overlay route) and
observe a "staircase" of distinct congestion levels whose height drops as
session concurrency rises; Fig 13 tracks how many physical edges each
overlay node can draw on.  These helpers compute those quantities.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.result import FlowSolution
from repro.overlay.session import Session
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.network import PhysicalNetwork
from repro.util.cdf import normalized_rank_cdf


def covered_edges_for_sessions(
    network: PhysicalNetwork,
    sessions: Sequence[Session],
    routing: Optional[FixedIPRouting] = None,
) -> np.ndarray:
    """Physical edges on at least one overlay (member-pair) route of any session."""
    routing = routing or FixedIPRouting(network)
    covered = np.zeros(network.num_edges, dtype=bool)
    for session in sessions:
        covered[routing.covered_edges(session.members)] = True
    return np.flatnonzero(covered)


def link_utilization_series(
    solution: FlowSolution,
    covered_edges: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(normalized_edge_rank, utilization_ratio)`` sorted descending.

    When ``covered_edges`` is given, only those edges enter the series
    (the paper restricts the plot to the 52 links covered by the two
    sessions' unicast paths); otherwise edges touched by any flow-carrying
    tree are used.
    """
    flows = solution.edge_flows()
    utilization = flows / solution.network.capacities
    if covered_edges is not None:
        utilization = utilization[np.asarray(covered_edges, dtype=np.int64)]
    else:
        mask = np.zeros(solution.network.num_edges, dtype=bool)
        for s in solution.sessions:
            for tf in s.tree_flows:
                mask[tf.tree.physical_edges] = True
        utilization = utilization[mask]
    return normalized_rank_cdf(utilization)


def mean_utilization(
    solution: FlowSolution, covered_edges: Optional[np.ndarray] = None
) -> float:
    """Average utilization ratio over the covered edges."""
    _, series = link_utilization_series(solution, covered_edges)
    return float(series.mean()) if series.size else 0.0


def utilization_staircase(
    solution: FlowSolution,
    covered_edges: Optional[np.ndarray] = None,
    resolution: float = 0.05,
) -> List[Tuple[float, int]]:
    """Group edges into distinct congestion levels (the "staircase").

    Utilization values are quantised to ``resolution`` and returned as
    ``(level, edge_count)`` pairs sorted by decreasing level — a compact
    numerical summary of the staircase phenomenon in Figs 4 and 14.
    """
    _, series = link_utilization_series(solution, covered_edges)
    if series.size == 0:
        return []
    quantised = np.round(series / resolution) * resolution
    levels, counts = np.unique(quantised, return_counts=True)
    pairs = sorted(zip(levels.tolist(), counts.tolist()), reverse=True)
    return [(float(level), int(count)) for level, count in pairs]


def covered_edge_count(
    network: PhysicalNetwork,
    sessions: Sequence[Session],
    routing: Optional[FixedIPRouting] = None,
) -> int:
    """Number of physical links covered by the sessions' overlay routes."""
    return int(covered_edges_for_sessions(network, sessions, routing).size)


def edges_per_node(
    network: PhysicalNetwork,
    sessions: Sequence[Session],
    routing: Optional[FixedIPRouting] = None,
) -> float:
    """Average number of covered physical edges per distinct overlay node.

    This is the statistic of the paper's Fig 13: as sessions grow or
    multiply, the marginal number of fresh physical edges a node brings
    shrinks, explaining the throughput competition of Fig 12.
    """
    nodes = set()
    for session in sessions:
        nodes.update(session.members)
    if not nodes:
        return 0.0
    covered = covered_edge_count(network, sessions, routing)
    return covered / len(nodes)
