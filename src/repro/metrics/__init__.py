"""Evaluation metrics used by the paper's tables and figures.

* :mod:`distribution` — accumulative tree-rate distributions and the
  "asymmetric rate distribution" statistics (Figs 2, 3, 7, 8, 17),
* :mod:`utilization` — link-utilization ratio series, the staircase
  summary, and edges-per-node counts (Figs 4, 9, 13, 14),
* :mod:`fairness` — fairness indices and algorithm-versus-algorithm
  ratios (Figs 15, 16, 18, 19),
* :mod:`summary` — row builders for the Table II / IV / VII / VIII style
  reports.
"""

from repro.metrics.distribution import (
    tree_rate_distribution,
    session_rate_distributions,
    top_fraction_share,
    asymmetry_index,
)
from repro.metrics.utilization import (
    link_utilization_series,
    utilization_staircase,
    covered_edge_count,
    edges_per_node,
    mean_utilization,
)
from repro.metrics.fairness import (
    jains_index,
    min_rate_ratio,
    throughput_ratio,
    max_min_violation,
)
from repro.metrics.summary import (
    solution_table_row,
    solutions_to_table,
    compare_solutions,
)

__all__ = [
    "tree_rate_distribution",
    "session_rate_distributions",
    "top_fraction_share",
    "asymmetry_index",
    "link_utilization_series",
    "utilization_staircase",
    "covered_edge_count",
    "edges_per_node",
    "mean_utilization",
    "jains_index",
    "min_rate_ratio",
    "throughput_ratio",
    "max_min_violation",
    "solution_table_row",
    "solutions_to_table",
    "compare_solutions",
]
