"""Fairness and cross-algorithm comparison metrics.

Used by the Section VI experiments: the minimum-rate surface of
MaxConcurrentFlow (Fig 15), the throughput ratio between
MaxConcurrentFlow and MaxFlow (Fig 16), and the online algorithm's
approximation ratios against both upper bounds (Figs 18, 19).
"""

from __future__ import annotations

import numpy as np

from repro.core.result import FlowSolution
from repro.util.errors import ConfigurationError


def jains_index(rates: np.ndarray) -> float:
    """Jain's fairness index of a rate vector (1 = perfectly equal)."""
    r = np.asarray(rates, dtype=float)
    if r.size == 0:
        return 1.0
    if np.any(r < 0):
        raise ConfigurationError("rates must be non-negative")
    denom = r.size * float(np.sum(r**2))
    if denom == 0:
        return 1.0
    return float(np.sum(r)) ** 2 / denom


def weighted_min_rate(solution: FlowSolution) -> float:
    """``min_i rate_i / dem(i)`` — the concurrent-flow objective value."""
    return solution.concurrent_throughput


def throughput_ratio(solution: FlowSolution, reference: FlowSolution) -> float:
    """Overall-throughput ratio of ``solution`` against ``reference``.

    Fig 16 uses MaxConcurrentFlow as the solution and MaxFlow as the
    reference; Fig 18 uses the online algorithm against MaxFlow.
    """
    ref = reference.overall_throughput
    if ref <= 0:
        raise ConfigurationError("reference solution has zero throughput")
    return solution.overall_throughput / ref


def min_rate_ratio(solution: FlowSolution, reference: FlowSolution) -> float:
    """Minimum-session-rate ratio of ``solution`` against ``reference`` (Fig 19)."""
    ref = reference.min_rate
    if ref <= 0:
        raise ConfigurationError("reference solution has zero minimum rate")
    return solution.min_rate / ref


def max_min_violation(solution: FlowSolution) -> float:
    """How far the solution is from equalising weighted rates.

    Returns ``(max_i rate_i/dem_i - min_i rate_i/dem_i) / max_i rate_i/dem_i``;
    zero means all sessions achieve the same demand fraction, which is
    what MaxConcurrentFlow equalises when no session can get more without
    hurting another.
    """
    weighted = np.asarray(
        [s.rate / s.session.demand for s in solution.sessions], dtype=float
    )
    if weighted.size == 0 or weighted.max() <= 0:
        return 0.0
    return float((weighted.max() - weighted.min()) / weighted.max())
