"""Tree-rate distribution metrics.

The paper repeatedly observes an *asymmetric rate distribution*: most of a
session's throughput is concentrated in a small fraction of its overlay
trees (Figs 2/3, and its decay with session size in Fig 17).  These
helpers extract those curves and summary statistics from a
:class:`~repro.core.result.FlowSolution`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.result import FlowSolution, SessionResult
from repro.util.cdf import cumulative_distribution, fraction_of_mass_in_top
from repro.util.errors import ConfigurationError


def tree_rate_distribution(session_result: SessionResult) -> Tuple[np.ndarray, np.ndarray]:
    """``(normalized_tree_rank, accumulative_rate_fraction)`` for one session.

    Exactly the series plotted in the paper's Figs 2, 3, 7, 8 and 17.
    """
    return cumulative_distribution(session_result.tree_rates())


def session_rate_distributions(
    solution: FlowSolution,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Tree-rate distribution curves for every session of a solution."""
    return [tree_rate_distribution(s) for s in solution.sessions]


def top_fraction_share(session_result: SessionResult, top_fraction: float = 0.1) -> float:
    """Fraction of a session's rate carried by its top ``top_fraction`` trees.

    The paper's headline observation is that this exceeds 0.9 for
    ``top_fraction = 0.1`` on small sessions.
    """
    return fraction_of_mass_in_top(session_result.tree_rates(), top_fraction)


def asymmetry_index(session_result: SessionResult) -> float:
    """Gini-style index of how unevenly rate is spread across trees.

    0 means all trees carry the same rate; values near 1 mean a single
    tree dominates.  Used to quantify the decay of the asymmetric rate
    distribution as sessions grow (Fig 17).
    """
    rates = np.sort(session_result.tree_rates())
    if rates.size == 0:
        return 0.0
    total = rates.sum()
    if total <= 0:
        return 0.0
    n = rates.size
    if n == 1:
        return 1.0
    # Gini coefficient over tree rates.
    cumulative = np.cumsum(rates)
    gini = 1.0 + 1.0 / n - 2.0 * float(np.sum(cumulative)) / (n * total)
    return float(np.clip(gini, 0.0, 1.0))


def distribution_by_session_size(
    solutions_by_size: Dict[int, FlowSolution],
    session_index: int = 0,
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Tree-rate distribution of one session per solution, keyed by size.

    Helper for the Fig 17 experiment where the same curve is plotted for a
    sweep of session sizes.
    """
    out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for size, solution in solutions_by_size.items():
        if session_index >= len(solution.sessions):
            raise ConfigurationError(
                f"solution for size {size} has only {len(solution.sessions)} sessions"
            )
        out[size] = tree_rate_distribution(solution.sessions[session_index])
    return out
