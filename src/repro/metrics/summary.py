"""Report-row builders for the paper-style tables.

Tables II, IV, VII and VIII all share the same layout: one column per
approximation ratio, with rows for per-session rates, overall throughput,
per-session tree counts and running time (MST-operation counts).  These
helpers turn :class:`FlowSolution` objects into those rows and into
generic comparison tables.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.core.result import FlowSolution
from repro.util.tables import format_table


def solution_table_row(solution: FlowSolution) -> Dict[str, float]:
    """Flatten one solution into the fields the paper's tables report."""
    row: Dict[str, float] = {}
    for index, session_result in enumerate(solution.sessions):
        row[f"rate_session_{index + 1}"] = session_result.rate
        row[f"trees_session_{index + 1}"] = float(session_result.num_trees)
    row["overall_throughput"] = solution.overall_throughput
    row["min_rate"] = solution.min_rate
    row["oracle_calls"] = float(solution.oracle_calls)
    if "prescale_oracle_calls" in solution.extra:
        row["main_oracle_calls"] = float(solution.extra["main_oracle_calls"])
        row["prescale_oracle_calls"] = float(solution.extra["prescale_oracle_calls"])
    return row


def solutions_to_table(
    solutions: Mapping[float, FlowSolution],
    row_order: Sequence[str] | None = None,
    precision: int = 2,
    title: str | None = None,
) -> str:
    """Render a "metric x approximation ratio" table like the paper's Table II.

    ``solutions`` maps the approximation ratio (column) to the solution.
    """
    if not solutions:
        return title or ""
    ratios = sorted(solutions.keys())
    rows_by_ratio = {ratio: solution_table_row(solutions[ratio]) for ratio in ratios}
    if row_order is None:
        # Preserve the order of the first row's keys.
        row_order = list(rows_by_ratio[ratios[0]].keys())
    headers = ["metric"] + [f"{ratio:g}" for ratio in ratios]
    table_rows: List[List[object]] = []
    for metric in row_order:
        table_rows.append(
            [metric] + [rows_by_ratio[ratio].get(metric, float("nan")) for ratio in ratios]
        )
    return format_table(headers, table_rows, precision=precision, title=title)


def compare_solutions(
    solutions: Mapping[str, FlowSolution], precision: int = 2, title: str | None = None
) -> str:
    """Side-by-side comparison of named solutions (one column per algorithm)."""
    if not solutions:
        return title or ""
    names = list(solutions.keys())
    rows_by_name = {name: solution_table_row(solutions[name]) for name in names}
    metrics: List[str] = []
    for name in names:
        for key in rows_by_name[name]:
            if key not in metrics:
                metrics.append(key)
    headers = ["metric"] + names
    table_rows: List[List[object]] = []
    for metric in metrics:
        table_rows.append(
            [metric] + [rows_by_name[name].get(metric, float("nan")) for name in names]
        )
    return format_table(headers, table_rows, precision=precision, title=title)
