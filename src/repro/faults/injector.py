"""Deterministic, seedable fault injection at named points.

The crash-safety story of the persistent layers — atomic renames in the
store, claim/lease/complete transitions in the work queue, append-only
relay channels in the serve layer — is proven by *injecting* failures at
the exact instruction boundaries where a process can die, not by
asserting it from the code's shape.  This module is the injection
mechanism; the seams themselves live in the hardened modules
(:mod:`repro.store.report_store`, :mod:`repro.cluster.queue`,
:mod:`repro.serve.relay`, ...) as calls to :func:`point` and
:func:`mangle` under stable dotted names (``store.put.rename``,
``queue.claim.lease``, ``relay.append``).

Design constraints, in order:

* **Zero overhead when disabled.**  :func:`point` is one module-global
  load plus an ``is None`` test when no plan is installed — safe to
  leave in hot I/O paths permanently.  The bench-smoke suite pins this.
* **Deterministic.**  A rule fires on exact hit counts (``@N`` = the
  Nth time the point is reached, 1-based), so a test can say "crash the
  *second* store put" and get the same failure every run.  The optional
  probabilistic mode draws from a rule-local seeded RNG, so even random
  fault storms replay bit-identically.
* **Spec-driven.**  Plans come from the ``REPRO_FAULTS`` environment
  variable (read at import, so subprocess workers inherit faults from
  their parent's environment) or :func:`configure_faults`.

Grammar — comma-separated rules, each ``point:action`` plus optional
modifiers (in this order)::

    <point>:<action>[=PARAM][@AT][xTIMES|x*][%PROB][~SEED]

    store.put.rename:crash@2        crash the process at the 2nd hit
    store.get.read:raisex2          raise InjectedFault on hits 1 and 2
    queue.claim.rename:delay=0.05x* sleep 50ms at every hit
    store.put.write:truncate=0.5    halve the bytes written (once)
    relay.append:crash%0.25~7       crash w.p. 0.25, seeded (replayable)

Actions:

``raise``
    Raise :class:`InjectedFault` (an ``OSError``) — the transient-error
    simulation retry policies must absorb.
``crash``
    ``os._exit(CRASH_EXIT_CODE)`` — an un-catchable process death, the
    kill-at-this-exact-point primitive.  Only meaningful in expendable
    subprocesses (workers, spawned servers).
``delay``
    ``time.sleep(PARAM)`` — races and lease-expiry windows.
``truncate``
    Only acts at :func:`mangle` seams: the write's payload is cut to
    ``int(len * PARAM)`` bytes (default 0.5) — the torn/partial-write
    simulation.  Ignored by plain :func:`point` calls.
"""

from __future__ import annotations

import os
import random
import re
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.obs import metrics as obs_metrics
from repro.util.errors import ConfigurationError

FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Exit status of a ``crash`` action — distinctive, so tests can tell an
#: injected death from an ordinary worker failure.
CRASH_EXIT_CODE = 70

_ACTIONS = ("raise", "crash", "delay", "truncate")

_RULE_RE = re.compile(
    r"^(?P<action>raise|crash|delay|truncate)"
    r"(?:=(?P<param>[0-9]*\.?[0-9]+))?"
    r"(?:@(?P<at>[0-9]+))?"
    r"(?:x(?P<times>[0-9]+|\*))?"
    r"(?:%(?P<prob>[0-9]*\.?[0-9]+))?"
    r"(?:~(?P<seed>[0-9]+))?$"
)


class InjectedFault(OSError):
    """The error an armed ``raise`` rule throws at its fault point."""


@dataclass
class FaultRule:
    """One armed behaviour at one named point (see module grammar)."""

    point: str
    action: str
    param: Optional[float] = None
    at: int = 1
    times: Optional[int] = 1  # None = every eligible hit ("x*")
    probability: Optional[float] = None
    seed: Optional[int] = None
    fired: int = field(default=0, compare=False)
    _rng: Optional[random.Random] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r} (one of {_ACTIONS})"
            )
        if self.at < 1:
            raise ConfigurationError(f"fault '@at' must be >= 1, got {self.at}")
        if self.times is not None and self.times < 1:
            raise ConfigurationError(f"fault 'xtimes' must be >= 1, got {self.times}")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in (0, 1], got {self.probability}"
            )
        if self.probability is not None:
            # Rule-local RNG: deterministic given the seed, independent
            # of every other rule's draws.
            self._rng = random.Random(
                self.seed if self.seed is not None else 0
            )

    def wants(self, hit: int) -> bool:
        """Whether this rule fires on the ``hit``-th arrival (1-based)."""
        if hit < self.at:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self._rng is not None and self._rng.random() >= self.probability:
            return False
        return True


def parse_fault_spec(spec: str) -> List[FaultRule]:
    """Parse a ``REPRO_FAULTS`` string into rules (see module grammar)."""
    rules: List[FaultRule] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if ":" not in chunk:
            raise ConfigurationError(
                f"fault rule {chunk!r} must look like 'point:action[...]'"
            )
        point_name, behaviour = chunk.split(":", 1)
        point_name = point_name.strip()
        if not point_name:
            raise ConfigurationError(f"fault rule {chunk!r} names no point")
        match = _RULE_RE.match(behaviour.strip())
        if match is None:
            raise ConfigurationError(
                f"cannot parse fault behaviour {behaviour!r} "
                "(expected action[=PARAM][@AT][xTIMES|x*][%PROB][~SEED])"
            )
        times_text = match.group("times")
        rules.append(
            FaultRule(
                point=point_name,
                action=match.group("action"),
                param=(
                    float(match.group("param"))
                    if match.group("param") is not None
                    else None
                ),
                at=int(match.group("at") or 1),
                times=(
                    None
                    if times_text == "*"
                    else int(times_text)
                    if times_text is not None
                    else 1
                ),
                probability=(
                    float(match.group("prob"))
                    if match.group("prob") is not None
                    else None
                ),
                seed=(
                    int(match.group("seed"))
                    if match.group("seed") is not None
                    else None
                ),
            )
        )
    return rules


class FaultPlan:
    """The active set of rules plus per-point hit accounting.

    Thread-safe: serve worker threads, queue pollers and HTTP handlers
    may all cross armed points concurrently.
    """

    def __init__(self, rules: Iterable[FaultRule]) -> None:
        self._rules: Dict[str, List[FaultRule]] = {}
        for rule in rules:
            self._rules.setdefault(rule.point, []).append(rule)
        self.hits: Dict[str, int] = {}
        self._lock = threading.Lock()

    def describe(self) -> Dict[str, List[str]]:
        """Point → list of armed actions (introspection/debugging)."""
        return {
            name: [rule.action for rule in rules]
            for name, rules in sorted(self._rules.items())
        }

    def trigger(
        self, name: str, data: Optional[bytes] = None
    ) -> Optional[bytes]:
        """Record a hit at ``name`` and run any rule that fires.

        Returns ``data`` (possibly truncated) for :func:`mangle` seams;
        plain :func:`point` calls pass ``data=None`` and truncate rules
        are skipped.  ``raise``/``crash``/``delay`` act from here.
        """
        with self._lock:
            hit = self.hits.get(name, 0) + 1
            self.hits[name] = hit
            firing: List[FaultRule] = []
            for rule in self._rules.get(name, ()):
                if rule.wants(hit):
                    rule.fired += 1
                    firing.append(rule)
        obs_metrics.registry().counter(
            "repro_fault_point_hits_total",
            "Armed fault-point crossings (only counted while a plan is active)",
            labels={"point": name},
        ).inc()
        for rule in firing:
            obs_metrics.registry().counter(
                "repro_fault_injections_total",
                "Faults actually injected, by point and action",
                labels={"point": name, "action": rule.action},
            ).inc()
            if rule.action == "delay":
                time.sleep(rule.param if rule.param is not None else 0.01)
            elif rule.action == "truncate":
                if data is not None:
                    fraction = rule.param if rule.param is not None else 0.5
                    data = data[: int(len(data) * fraction)]
            elif rule.action == "raise":
                raise InjectedFault(f"injected fault at {name} (hit {hit})")
            elif rule.action == "crash":
                print(
                    f"repro.faults: injected crash at {name} (hit {hit})",
                    file=sys.stderr,
                    flush=True,
                )
                os._exit(CRASH_EXIT_CODE)
        return data


PlanLike = Union[None, str, FaultPlan, Sequence[FaultRule]]

#: ``None`` means *disabled*: :func:`point` returns after one comparison.
_PLAN: Optional[FaultPlan] = None

# ----------------------------------------------------------------------
# the hot-path entry points
# ----------------------------------------------------------------------


def point(name: str) -> None:
    """Cross the named fault point (no-op unless a plan arms it)."""
    plan = _PLAN
    if plan is None:
        return
    plan.trigger(name)


def mangle(name: str, data: bytes) -> bytes:
    """Cross a data seam: returns ``data``, truncated if a rule says so."""
    plan = _PLAN
    if plan is None:
        return data
    out = plan.trigger(name, data)
    return data if out is None else out


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, or ``None`` when injection is disabled."""
    return _PLAN


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------


def configure_faults(plan: PlanLike) -> Optional[FaultPlan]:
    """Install (or clear) the process-wide fault plan.

    Accepts a spec string (the ``REPRO_FAULTS`` grammar), a prebuilt
    :class:`FaultPlan`, a sequence of :class:`FaultRule`, or
    ``None``/``""`` to disable injection.  Returns the installed plan.
    """
    global _PLAN
    if plan is None or plan == "":
        _PLAN = None
        return None
    if isinstance(plan, FaultPlan):
        _PLAN = plan
    elif isinstance(plan, str):
        _PLAN = FaultPlan(parse_fault_spec(plan))
    else:
        _PLAN = FaultPlan(plan)
    return _PLAN


class fault_scope:
    """Context manager: install a plan, restore the previous one on exit.

    The test-suite idiom — faults injected inside the block can never
    leak into the next test::

        with fault_scope("store.get.read:raisex2"):
            assert store.get(key) is not None   # retried through
    """

    def __init__(self, plan: PlanLike) -> None:
        self._plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> Optional[FaultPlan]:
        global _PLAN
        self._previous = _PLAN
        return configure_faults(self._plan)

    def __exit__(self, exc_type, exc, tb) -> None:
        global _PLAN
        _PLAN = self._previous


# ----------------------------------------------------------------------
# the point catalogue
# ----------------------------------------------------------------------

_DECLARED: Dict[str, str] = {}


def declare_point(name: str, description: str = "") -> str:
    """Register a fault-point name in the process-wide catalogue.

    Modules declare their seams at import time, so test sweeps can
    enumerate *every* registered point (``declared_points()``) instead
    of hand-maintaining a list that silently rots as seams are added.
    Returns ``name`` so declarations double as constants::

        PUT_RENAME = faults.declare_point("store.put.rename", "...")
    """
    _DECLARED[name] = description
    return name


def declared_points(prefix: str = "") -> List[str]:
    """All declared fault points (optionally filtered by dotted prefix)."""
    return sorted(name for name in _DECLARED if name.startswith(prefix))


# Arm from the environment at import: worker subprocesses spawned with
# REPRO_FAULTS in their env inherit the plan with no code changes.
_env_spec = os.environ.get(FAULTS_ENV_VAR)
if _env_spec:
    configure_faults(_env_spec)
