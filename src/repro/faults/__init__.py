"""repro.faults — deterministic fault injection for crash-safety tests.

See :mod:`repro.faults.injector` for the grammar and semantics.  The
usual import style in instrumented modules is::

    from repro import faults
    ...
    faults.point("store.put.rename")
    data = faults.mangle("store.put.write", data)
"""

from repro.faults.injector import (
    CRASH_EXIT_CODE,
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    configure_faults,
    declare_point,
    declared_points,
    fault_scope,
    mangle,
    parse_fault_spec,
    point,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "configure_faults",
    "declare_point",
    "declared_points",
    "fault_scope",
    "mangle",
    "parse_fault_spec",
    "point",
]
