"""Section VI experiments: Figures 12–19 (the sessions x session-size sweep).

A two-level AS/router topology carries ``n`` concurrent sessions of a
given average size; MaxFlow, MaxConcurrentFlow and the online algorithm
are run over the whole grid and the paper's surfaces/curves extracted:

* Fig 12 — overall throughput surface (MaxFlow),
* Fig 13 — covered physical edges per overlay node,
* Fig 14 — link-utilization staircases for low/medium/high concurrency,
* Fig 15 — minimum session rate surface (MaxConcurrentFlow),
* Fig 16 — throughput ratio MaxConcurrentFlow / MaxFlow,
* Fig 17 — asymmetric rate distribution versus session size,
* Fig 18 — online / MaxFlow throughput ratio,
* Fig 19 — online / MaxConcurrentFlow minimum-rate ratio.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    online_sweep_runs,
    sweep_instance,
    sweep_runs,
    sweep_scenario_spec,
)
from repro.experiments.settings import sweep_setting_for_scale
from repro.metrics.distribution import top_fraction_share, tree_rate_distribution
from repro.metrics.utilization import (
    covered_edges_for_sessions,
    edges_per_node,
    link_utilization_series,
    utilization_staircase,
)
from repro.util.tables import format_table


def _notes(scale: str) -> str:
    setting = sweep_setting_for_scale(scale)
    return (
        f"two-level topology {setting.num_ases} ASes x {setting.routers_per_as} routers, "
        f"session counts {setting.session_counts}, sizes {setting.session_sizes}, "
        f"approximation ratio {setting.ratio}"
        + (
            ""
            if scale == "paper"
            else " (reduced grid versus the paper's 10x100 topology and 1..9 x 10..90 grid)"
        )
    )


def _surface_result(
    experiment_id: str,
    title: str,
    scale: str,
    values: Dict[Tuple[int, int], float],
    value_label: str,
) -> ExperimentResult:
    setting = sweep_setting_for_scale(scale)
    counts = list(setting.session_counts)
    sizes = list(setting.session_sizes)
    grid: List[List[float]] = [
        [values[(count, size)] for size in sizes] for count in counts
    ]
    headers = ["sessions \\ size"] + [str(s) for s in sizes]
    rows = [[count] + grid[i] for i, count in enumerate(counts)]
    data = {
        "session_counts": counts,
        "session_sizes": sizes,
        "values": grid,
        "value_label": value_label,
    }
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        scale=scale,
        data=data,
        rendered=format_table(headers, rows, title=f"{title} ({value_label})"),
        notes=_notes(scale),
    )


# ----------------------------------------------------------------------
# Fig 12 / 15 / 16 — MaxFlow and MaxConcurrentFlow surfaces
# ----------------------------------------------------------------------
def _grid_scenario_specs(scale: str, algorithm: str, points) -> Dict[str, Dict]:
    """Scenario-API specs of every grid cell (re-solvable provenance)."""
    return {
        f"{count}x{size}": sweep_scenario_spec(scale, algorithm, count, size).to_jsonable()
        for count, size in points
    }


def fig12(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 12: overall throughput surface under MaxFlow."""
    runs = sweep_runs(scale, "maxflow")
    values = {point: sol.overall_throughput for point, sol in runs.items()}
    result = _surface_result(
        "fig12", "Overall Throughput (MaxFlow)", scale, values, "overall throughput"
    )
    result.data["scenario_specs"] = _grid_scenario_specs(scale, "maxflow", runs)
    return result


def fig15(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 15: minimum session rate surface under MaxConcurrentFlow."""
    runs = sweep_runs(scale, "maxconcurrent")
    values = {point: sol.min_rate for point, sol in runs.items()}
    result = _surface_result(
        "fig15", "Minimum Rate (MaxConcurrentFlow)", scale, values, "minimum session rate"
    )
    result.data["scenario_specs"] = _grid_scenario_specs(scale, "maxconcurrent", runs)
    return result


def fig16(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 16: overall throughput ratio MaxConcurrentFlow vs MaxFlow."""
    maxflow = sweep_runs(scale, "maxflow")
    concurrent = sweep_runs(scale, "maxconcurrent")
    values = {}
    for point, mf in maxflow.items():
        tp = mf.overall_throughput
        values[point] = concurrent[point].overall_throughput / tp if tp > 0 else 0.0
    result = _surface_result(
        "fig16",
        "Overall Throughput Ratio (MaxConcurrentFlow vs. MaxFlow)",
        scale,
        values,
        "throughput ratio",
    )
    result.data["scenario_specs"] = {
        "maxflow": _grid_scenario_specs(scale, "maxflow", maxflow),
        "maxconcurrent": _grid_scenario_specs(scale, "maxconcurrent", concurrent),
    }
    return result


# ----------------------------------------------------------------------
# Fig 13 — physical edges per node
# ----------------------------------------------------------------------
def fig13(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 13: number of covered physical edges per overlay node."""
    instance = sweep_instance(scale)
    values = {
        point: edges_per_node(instance.network, sessions, instance.routing)
        for point, sessions in instance.sessions.items()
    }
    return _surface_result(
        "fig13", "Number of Edges per Node", scale, values, "physical edges per node"
    )


# ----------------------------------------------------------------------
# Fig 14 — link-utilization staircase
# ----------------------------------------------------------------------
def fig14(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 14: link-utilization distributions for low/high concurrency."""
    instance = sweep_instance(scale)
    setting = instance.setting
    counts = sorted(setting.session_counts)
    selected_counts = sorted({counts[0], counts[len(counts) // 2], counts[-1]})
    data: Dict = {"panels": {}}
    lines: List[str] = []
    for algorithm, label in (("maxconcurrent", "MaxConcurrentFlow"), ("maxflow", "MaxFlow")):
        runs = sweep_runs(scale, algorithm)
        for count in selected_counts:
            panel = {}
            for size in setting.session_sizes:
                solution = runs[(count, size)]
                covered = covered_edges_for_sessions(
                    instance.network, instance.sessions[(count, size)], instance.routing
                )
                ranks, utilization = link_utilization_series(solution, covered)
                panel[f"size_{size}"] = {
                    "normalized_rank": list(ranks),
                    "utilization": list(utilization),
                    "staircase": utilization_staircase(solution, covered),
                    "mean_utilization": float(utilization.mean()) if utilization.size else 0.0,
                }
                lines.append(
                    f"{label}, {count} session(s), size {size}: mean utilization "
                    f"{panel[f'size_{size}']['mean_utilization']:.3f}"
                )
            data["panels"][f"{label}_sessions_{count}"] = panel
    return ExperimentResult(
        experiment_id="fig14",
        title="Limited Link Utilization",
        scale=scale,
        data=data,
        rendered="\n".join(lines),
        notes=_notes(scale),
    )


# ----------------------------------------------------------------------
# Fig 17 — asymmetric rate distribution vs session size
# ----------------------------------------------------------------------
def fig17(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 17: decay of the asymmetric rate distribution with session size."""
    setting = sweep_setting_for_scale(scale)
    runs = sweep_runs(scale, "maxflow")
    counts = sorted(setting.session_counts)
    selected_counts = [counts[0], counts[-1]]
    data: Dict = {"panels": {}}
    lines: List[str] = []
    for count in selected_counts:
        panel = {}
        for size in setting.session_sizes:
            solution = runs[(count, size)]
            first_session = solution.sessions[0]
            ranks, fractions = tree_rate_distribution(first_session)
            share = top_fraction_share(first_session, 0.1)
            panel[f"size_{size}"] = {
                "normalized_rank": list(ranks),
                "cumulative_fraction": list(fractions),
                "top_10pct_share": share,
                "num_trees": int(first_session.num_trees),
            }
            lines.append(
                f"{count} session(s), size {size}: top-10% trees carry {share:.2%} "
                f"of session 1's rate ({first_session.num_trees} trees)"
            )
        data["panels"][f"sessions_{count}"] = panel
    return ExperimentResult(
        experiment_id="fig17",
        title="Diminishing Effects of Asymmetric Rate Distribution",
        scale=scale,
        data=data,
        rendered="\n".join(lines),
        notes=_notes(scale),
    )


# ----------------------------------------------------------------------
# Fig 18 / 19 — online algorithm against the upper bounds
# ----------------------------------------------------------------------
def fig18(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 18: online / MaxFlow overall throughput ratio."""
    setting = sweep_setting_for_scale(scale)
    maxflow = sweep_runs(scale, "maxflow")
    data: Dict = {"tree_limits": list(setting.online_tree_limits), "surfaces": {}}
    rendered_parts: List[str] = []
    for limit in setting.online_tree_limits:
        online = online_sweep_runs(scale, limit)
        values = {}
        for point, sol in online.items():
            reference = maxflow[point].overall_throughput
            values[point] = sol.overall_throughput / reference if reference > 0 else 0.0
        surface = _surface_result(
            "fig18", f"Online vs MaxFlow throughput ratio ({limit} trees)", scale, values,
            "throughput ratio",
        )
        data["surfaces"][f"trees_{limit}"] = surface.data
        rendered_parts.append(surface.rendered)
    return ExperimentResult(
        experiment_id="fig18",
        title="Overall Throughput Ratio (Online vs. MaxFlow)",
        scale=scale,
        data=data,
        rendered="\n\n".join(rendered_parts),
        notes=_notes(scale),
    )


def fig19(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 19: online / MaxConcurrentFlow minimum-rate ratio."""
    setting = sweep_setting_for_scale(scale)
    concurrent = sweep_runs(scale, "maxconcurrent")
    data: Dict = {"tree_limits": list(setting.online_tree_limits), "surfaces": {}}
    rendered_parts: List[str] = []
    for limit in setting.online_tree_limits:
        online = online_sweep_runs(scale, limit)
        values = {}
        for point, sol in online.items():
            reference = concurrent[point].min_rate
            values[point] = sol.min_rate / reference if reference > 0 else 0.0
        surface = _surface_result(
            "fig19", f"Online vs MaxConcurrentFlow min-rate ratio ({limit} trees)", scale,
            values, "min-rate ratio",
        )
        data["surfaces"][f"trees_{limit}"] = surface.data
        rendered_parts.append(surface.rendered)
    return ExperimentResult(
        experiment_id="fig19",
        title="Minimum Rate Ratio (Online vs. MaxConcurrentFlow)",
        scale=scale,
        data=data,
        rendered="\n\n".join(rendered_parts),
        notes=_notes(scale),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.settings import configure_jobs, experiment_cli_parser

    args = experiment_cli_parser(
        "Section VI experiments (Figs 12-19, two-level sweep)"
    ).parse_args()
    if args.jobs is not None:
        configure_jobs(args.jobs)
    scale = args.scale
    for result in (
        fig12(scale),
        fig13(scale),
        fig14(scale),
        fig15(scale),
        fig16(scale),
        fig17(scale),
        fig18(scale),
        fig19(scale),
    ):
        print(result)
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
