"""Section V experiments: Tables VII & VIII and Figures 7–11 (arbitrary routing).

Every Section III/IV experiment is re-run with the dynamic-routing overlay
model (overlay edges follow shortest paths under the *current* length
function instead of fixed IP routes) and compared with the fixed-IP
results, quantifying the impact of IP routing — the paper's finding is
that the improvement is below 1%.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import flat_ratio_sweep
from repro.experiments.section3 import fig2, fig3, fig4, table2, table4
from repro.experiments.section4 import fig5, fig6


def _with_ip_comparison(result: ExperimentResult, scale: str, algorithm: str) -> ExperimentResult:
    """Attach the arbitrary-vs-IP throughput improvement to a table result."""
    dynamic = flat_ratio_sweep(scale, "dynamic", algorithm)
    fixed = flat_ratio_sweep(scale, "ip", algorithm)
    improvements: Dict[str, float] = {}
    for ratio in sorted(dynamic):
        fixed_tp = fixed[ratio].overall_throughput
        dynamic_tp = dynamic[ratio].overall_throughput
        improvements[f"{ratio:g}"] = (
            (dynamic_tp - fixed_tp) / fixed_tp if fixed_tp > 0 else 0.0
        )
    result.data["throughput_improvement_vs_ip"] = improvements
    mean_improvement = (
        sum(improvements.values()) / len(improvements) if improvements else 0.0
    )
    result.rendered += (
        f"\nmean throughput improvement of arbitrary routing over IP routing: "
        f"{mean_improvement:+.3%}"
    )
    return result


def table7(scale: str = "quick") -> ExperimentResult:
    """Paper Table VII: MaxFlow with arbitrary (dynamic) routing."""
    result = table2(scale=scale, routing_kind="dynamic")
    result.experiment_id = "table7"
    result.title = "Experiment result of MaxFlow with arbitrary routing"
    return _with_ip_comparison(result, scale, "maxflow")


def table8(scale: str = "quick") -> ExperimentResult:
    """Paper Table VIII: MaxConcurrentFlow with arbitrary (dynamic) routing."""
    result = table4(scale=scale, routing_kind="dynamic")
    result.experiment_id = "table8"
    result.title = "Experiment results of MaxConcurrentFlow with arbitrary routing"
    return _with_ip_comparison(result, scale, "maxconcurrent")


def fig7(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 7: tree rate distribution, MaxFlow with arbitrary routing."""
    result = fig2(scale=scale, routing_kind="dynamic")
    result.experiment_id = "fig7"
    result.title = "Overlay Tree Rate Distribution (MaxFlow with Arbitrary Routing)"
    return result


def fig8(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 8: tree rate distribution, MaxConcurrentFlow with arbitrary routing."""
    result = fig3(scale=scale, routing_kind="dynamic")
    result.experiment_id = "fig8"
    result.title = (
        "Overlay Tree Rate Distribution (MaxConcurrentFlow with Arbitrary Routing)"
    )
    return result


def fig9(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 9: link utilization under arbitrary routing."""
    result = fig4(scale=scale, routing_kind="dynamic")
    result.experiment_id = "fig9"
    result.title = "Link Utilization (Arbitrary Routing)"
    return result


def fig10(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 10: Random/Online throughput vs tree limit, arbitrary routing."""
    result = fig5(scale=scale, routing_kind="dynamic")
    result.experiment_id = "fig10"
    result.title = "Throughput (Random and Online with Arbitrary Routing)"
    return result


def fig11(scale: str = "quick") -> ExperimentResult:
    """Paper Fig. 11: number of trees used, arbitrary routing."""
    result = fig6(scale=scale, routing_kind="dynamic")
    result.experiment_id = "fig11"
    result.title = "Number of Trees (Random and Online with Arbitrary Routing)"
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.settings import configure_jobs, experiment_cli_parser

    args = experiment_cli_parser(
        "Section V experiments (Tables VII/VIII, Figs 7-11, arbitrary routing)"
    ).parse_args()
    if args.jobs is not None:
        configure_jobs(args.jobs)
    scale = args.scale
    for result in (
        table7(scale),
        table8(scale),
        fig7(scale),
        fig8(scale),
        fig9(scale),
        fig10(scale),
        fig11(scale),
    ):
        print(result)
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
