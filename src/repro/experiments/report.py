"""Experiment result container and rendering helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.util.serialization import dump_json, to_jsonable


@dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction.

    Attributes
    ----------
    experiment_id:
        Paper identifier, e.g. ``"table2"`` or ``"fig14"``.
    title:
        Human-readable title matching the paper's caption.
    scale:
        ``"quick"`` or ``"paper"`` — how large the run was.
    data:
        JSON-serialisable dict with the series/rows of the table/figure.
    rendered:
        Pre-formatted plain-text report (what ``main()`` prints).
    notes:
        Free-form notes, e.g. scale reductions relative to the paper.
    """

    experiment_id: str
    title: str
    scale: str
    data: Dict[str, Any] = field(default_factory=dict)
    rendered: str = ""
    notes: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable view of the result."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "scale": self.scale,
            "notes": self.notes,
            "data": to_jsonable(self.data),
        }

    def save(self, directory: Path | str) -> Path:
        """Write the result as ``<experiment_id>.json`` under ``directory``."""
        directory = Path(directory)
        return dump_json(self.to_dict(), directory / f"{self.experiment_id}.json")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        header = f"[{self.experiment_id}] {self.title} (scale={self.scale})"
        parts = [header]
        if self.notes:
            parts.append(self.notes)
        if self.rendered:
            parts.append(self.rendered)
        return "\n".join(parts)
