"""Shared experiment execution with in-process caching.

Several figures are different views of the same underlying runs (e.g.
Table II, Fig 2 and Fig 4 all read the MaxFlow ratio sweep; Figs 12–19
all read the Section VI sweep).  This module performs those runs once per
process and caches the results, keyed by scale / routing kind / algorithm,
so that generating every figure does not re-solve identical instances.

Every sweep is a grid of mutually independent configuration cells (one
ratio, one (session count, session size) point, one tree limit), each
deterministically seeded from the setting, so the sweeps also support a
process-pool parallel mode: pass ``jobs=`` to a sweep function, export
``REPRO_JOBS``, or use the section CLIs' ``--jobs`` flag.  Parallel runs
produce bit-identical results to serial ones — each worker rebuilds the
(deterministic) instance from the scale name and solves whole cells.

Every sweep is spec-representable — including, since the arrival
process became a spec field (:class:`repro.api.specs.ArrivalSpec`), the
online cells: the flat ratio sweeps, the Section VI grid, the
limited-tree fractional reference, the limited-tree online orderings
and the Section VI online sweep all route through
``repro.api.solve_many`` on declarative scenario specs (bit-identical
to the direct path, per the Scenario API contract).  With a persistent
:class:`repro.store.ReportStore` — pass ``store=`` or export
``REPRO_STORE`` — re-running a sweep in a fresh process performs zero
solver calls; only the randomized-rounding trials (which resample a
live fractional solution) always compute.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.service import solve_instance, solve_many
from repro.api.specs import ArrivalSpec, ScenarioSpec
from repro.store.report_store import StoreLike, resolve_store
from repro.core.result import FlowSolution
from repro.core.rounding import RandomMinCongestion
from repro.experiments.settings import (
    FlatSetting,
    LimitedTreeSetting,
    SweepSetting,
    flat_setting_for_scale,
    limited_tree_setting_for_scale,
    resolve_jobs,
    sweep_setting_for_scale,
)
from repro.overlay.session import Session
from repro.routing.base import RoutingModel
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import spawn_child_seed


def _map_cells(worker: Callable, tasks: Sequence[Tuple], jobs: Optional[int]) -> List:
    """Run ``worker`` over ``tasks`` serially or on a process pool.

    ``worker`` must be a module-level function and every task a picklable
    tuple; results come back in task order either way.
    """
    workers = min(resolve_jobs(jobs), len(tasks))
    if workers <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(worker, tasks))

# ----------------------------------------------------------------------
# flat (Sections III–V) runs
# ----------------------------------------------------------------------
@dataclass
class FlatInstance:
    """A concrete flat-setting problem instance (network + sessions + routing)."""

    setting: FlatSetting
    network: PhysicalNetwork
    sessions: List[Session]
    routing: RoutingModel
    routing_kind: str


_FLAT_INSTANCES: Dict[Tuple[str, str], FlatInstance] = {}
_FLAT_SWEEPS: Dict[Tuple[str, str, str], Dict[float, FlowSolution]] = {}
_LIMITED_TREE_STUDIES: Dict[Tuple[str, str], "LimitedTreeStudy"] = {}
_LIMITED_TREE_FRACTIONALS: Dict[Tuple[str, str], FlowSolution] = {}


def clear_caches() -> None:
    """Drop every cached run (used by tests that need fresh instances)."""
    _FLAT_INSTANCES.clear()
    _FLAT_SWEEPS.clear()
    _LIMITED_TREE_STUDIES.clear()
    _LIMITED_TREE_FRACTIONALS.clear()
    _SWEEP_INSTANCES.clear()
    _SWEEP_RUNS.clear()
    _ONLINE_SWEEP_RUNS.clear()


def flat_instance(scale: str, routing_kind: str = "ip") -> FlatInstance:
    """The (cached) flat-setting instance for a scale and routing kind."""
    key = (scale, routing_kind)
    if key not in _FLAT_INSTANCES:
        setting = flat_setting_for_scale(scale)
        network = setting.build_network()
        sessions = setting.build_sessions(network)
        routing = setting.build_routing(network, routing_kind)
        _FLAT_INSTANCES[key] = FlatInstance(
            setting=setting,
            network=network,
            sessions=sessions,
            routing=routing,
            routing_kind=routing_kind,
        )
    return _FLAT_INSTANCES[key]


def _solve_flat_cell(task: Tuple[str, str, str, float]) -> FlowSolution:
    """Solve one (scale, routing kind, algorithm, ratio) flat cell."""
    scale, routing_kind, algorithm, ratio = task
    instance = flat_instance(scale, routing_kind)
    solver, params = instance.setting.solver_spec(algorithm, ratio)
    return solve_instance(solver, instance.sessions, instance.routing, params)


def flat_scenario_spec(
    scale: str, routing_kind: str, algorithm: str, ratio: float
) -> ScenarioSpec:
    """Declarative spec of one flat sweep cell (provenance / remote submission).

    ``repro.api.solve`` on this spec reproduces the corresponding
    :func:`flat_ratio_sweep` cell bit-identically.
    """
    return flat_setting_for_scale(scale).scenario_spec(routing_kind, algorithm, ratio)


def _solve_specs_store_backed(
    specs: Sequence[ScenarioSpec], jobs: Optional[int], store
) -> List[FlowSolution]:
    """Solve sweep cells through the batch service + persistent store.

    The Scenario API contract (each ``*_scenario_spec`` reproduces its
    direct-path cell bit-identically) is what makes this a pure routing
    decision: results match ``_map_cells`` exactly, but warm store keys
    skip the solver entirely.
    """
    from repro.api.service import solve_many

    return [report.solution for report in solve_many(specs, jobs=jobs, store=store)]


def flat_ratio_sweep(
    scale: str,
    routing_kind: str,
    algorithm: str,
    jobs: Optional[int] = None,
    store: StoreLike = None,
) -> Dict[float, FlowSolution]:
    """Solve the flat instance for every approximation ratio of the setting.

    ``algorithm`` is ``"maxflow"`` or ``"maxconcurrent"``.  Results are
    cached per (scale, routing kind, algorithm); ``jobs`` controls how
    many ratio cells solve concurrently on an uncached first call.  With
    a persistent store (``store=`` or ``REPRO_STORE``), cells route
    through the spec path and re-runs come back without solver work.
    """
    if algorithm not in ("maxflow", "maxconcurrent"):
        raise ConfigurationError(f"unknown algorithm {algorithm!r}")
    key = (scale, routing_kind, algorithm)
    if key not in _FLAT_SWEEPS:
        setting = flat_instance(scale, routing_kind).setting
        resolved_store = resolve_store(store)
        if resolved_store is not None:
            specs = [
                flat_scenario_spec(scale, routing_kind, algorithm, ratio)
                for ratio in setting.ratios
            ]
            results = _solve_specs_store_backed(specs, jobs, resolved_store)
        else:
            tasks = [
                (scale, routing_kind, algorithm, ratio) for ratio in setting.ratios
            ]
            results = _map_cells(_solve_flat_cell, tasks, jobs)
        _FLAT_SWEEPS[key] = dict(zip(setting.ratios, results))
    return _FLAT_SWEEPS[key]


# ----------------------------------------------------------------------
# limited-tree (Section IV / Figs 5-6, 10-11) studies
# ----------------------------------------------------------------------
@dataclass
class LimitedTreePoint:
    """Measurements at one tree-limit value."""

    tree_limit: int
    random_throughput: float
    random_min_rate: float
    random_session_rates: List[float]
    random_trees_used: List[float]
    online_throughput: Dict[float, float]
    online_min_rate: Dict[float, float]
    online_session_rates: Dict[float, List[float]]
    online_trees_used: Dict[float, List[float]]


@dataclass
class LimitedTreeStudy:
    """Full output of the limited-tree experiment (one per routing kind)."""

    setting: LimitedTreeSetting
    fractional: FlowSolution
    points: List[LimitedTreePoint]

    def series(self, field: str, sigma: Optional[float] = None) -> List[float]:
        """Extract a per-tree-limit series by field name (for figures)."""
        out = []
        for p in self.points:
            value = getattr(p, field)
            if isinstance(value, dict):
                if sigma is None:
                    raise ConfigurationError(f"field {field!r} needs a sigma")
                value = value[sigma]
            out.append(value)
        return out


def _limited_tree_fractional(
    scale: str, routing_kind: str, store: StoreLike = None
) -> FlowSolution:
    """The (cached) fractional MaxConcurrentFlow reference solution."""
    key = (scale, routing_kind)
    if key not in _LIMITED_TREE_FRACTIONALS:
        resolved_store = resolve_store(store)
        if resolved_store is not None:
            spec = fractional_scenario_spec(scale, routing_kind)
            _LIMITED_TREE_FRACTIONALS[key] = _solve_specs_store_backed(
                [spec], jobs=1, store=resolved_store
            )[0]
        else:
            instance = flat_instance(scale, routing_kind)
            setting = limited_tree_setting_for_scale(scale)
            solver, params = instance.setting.solver_spec(
                "maxconcurrent", setting.fractional_ratio
            )
            _LIMITED_TREE_FRACTIONALS[key] = solve_instance(
                solver, instance.sessions, instance.routing, params
            )
    return _LIMITED_TREE_FRACTIONALS[key]


def _solve_rounding_point(
    task: Tuple[str, str, int, FlowSolution]
) -> Dict[str, float]:
    """Randomized rounding at one tree-limit value, averaged over trials.

    Seeded from ``setting.seed + limit`` (unchanged from the original
    harness — the rounding averages are a different random process from
    the arrival orderings, which now draw from the setting's spawn tree
    and therefore can no longer collide with these roots).  The shared
    fractional solution travels in the task payload so pool workers
    never re-solve it, whatever the multiprocessing start method.
    """
    scale, routing_kind, limit, fractional = task
    setting = limited_tree_setting_for_scale(scale)
    rounding = RandomMinCongestion(fractional, seed=setting.seed)
    return rounding.average_over_trials(
        limit, setting.rounding_trials, seed=setting.seed + limit
    )


def limited_tree_arrival_spec(
    setting: LimitedTreeSetting, tree_limit: int, ordering: int
) -> ArrivalSpec:
    """The arrival process of one limited-tree online ordering.

    Documented seed mapping (the reproducibility contract): ordering
    ``j`` at tree limit ``l`` permutes with
    ``spawn_child_seed(setting.seed, l, j)`` — a two-level
    ``SeedSequence`` spawn tree (:func:`repro.util.rng.spawn_child_seed`)
    that, unlike the old additive ``setting.seed + l`` roots, cannot
    collide across nearby limits or with the rounding-trial seeds.
    Orderings are shared across sigmas, as in the original harness.
    """
    return ArrivalSpec(
        replication=tree_limit,
        seed=spawn_child_seed(setting.seed, tree_limit, ordering),
        demand=1.0,
    )


def limited_tree_online_spec(
    scale: str, routing_kind: str, tree_limit: int, sigma: float, ordering: int
) -> ScenarioSpec:
    """Declarative spec of one limited-tree online ordering cell.

    ``repro.api.solve`` on this spec reproduces the corresponding
    :func:`limited_tree_study` online sample bit-identically — which is
    what lets the study route its online cells through ``solve_many``
    and the persistent report store.
    """
    setting = limited_tree_setting_for_scale(scale)
    return flat_setting_for_scale(scale).online_scenario_spec(
        routing_kind, sigma, limited_tree_arrival_spec(setting, tree_limit, ordering)
    )


def _assemble_online_point(
    base_sessions: Sequence[Session],
    solutions: Sequence[FlowSolution],
) -> Tuple[float, float, List[float], List[float]]:
    """Average one (limit, sigma) cell's ordering solutions.

    Returns (mean throughput, mean min rate, per-session mean rates,
    per-session mean tree counts), with grouped results aligned back to
    the original session order.
    """
    num_sessions = len(base_sessions)
    throughputs = []
    min_rates = []
    rates_acc = np.zeros(num_sessions)
    trees_acc = np.zeros(num_sessions)
    for solution in solutions:
        throughputs.append(solution.overall_throughput)
        min_rates.append(solution.min_rate)
        by_members = {
            tuple(sorted(s.session.members)): s for s in solution.sessions
        }
        for index, session in enumerate(base_sessions):
            grouped = by_members[tuple(sorted(session.members))]
            rates_acc[index] += grouped.rate
            trees_acc[index] += grouped.num_trees
    count = float(len(solutions))
    return (
        float(np.mean(throughputs)),
        float(np.mean(min_rates)),
        list(rates_acc / count),
        list(trees_acc / count),
    )


def fractional_scenario_spec(scale: str, routing_kind: str) -> ScenarioSpec:
    """Declarative spec of the limited-tree study's fractional reference."""
    setting = limited_tree_setting_for_scale(scale)
    return flat_setting_for_scale(scale).scenario_spec(
        routing_kind, "maxconcurrent", setting.fractional_ratio
    )


def limited_tree_study(
    scale: str,
    routing_kind: str = "ip",
    jobs: Optional[int] = None,
    store: StoreLike = None,
) -> LimitedTreeStudy:
    """Run (or fetch) the Random/Online versus tree-limit study.

    The fractional reference and every online ordering cell are
    spec-representable and solve through ``repro.api.solve_many`` — with
    a persistent store (``store=`` or ``REPRO_STORE``) a re-run of the
    study's online cells performs zero solver calls.  The rounding
    trials remain procedural (they resample a live fractional solution)
    and always compute.
    """
    key = (scale, routing_kind)
    if key in _LIMITED_TREE_STUDIES:
        return _LIMITED_TREE_STUDIES[key]

    setting = limited_tree_setting_for_scale(scale)
    fractional = _limited_tree_fractional(scale, routing_kind, store=store)
    base_sessions = flat_instance(scale, routing_kind).sessions
    num_sessions = len(base_sessions)

    rounding_tasks = [
        (scale, routing_kind, limit, fractional) for limit in setting.tree_limits
    ]
    rounding_stats = _map_cells(_solve_rounding_point, rounding_tasks, jobs)

    # One spec per (limit, sigma, ordering): the whole online side of the
    # study is a flat batch, so the service deduplicates, parallelises
    # and (with a store) persists it like any other sweep.
    cells = [
        (limit, sigma, ordering)
        for limit in setting.tree_limits
        for sigma in setting.sigmas
        for ordering in range(setting.online_orderings)
    ]
    specs = [
        limited_tree_online_spec(scale, routing_kind, limit, sigma, ordering)
        for limit, sigma, ordering in cells
    ]
    reports = solve_many(specs, jobs=jobs, store=store)
    solutions_by_cell = {
        cell: report.solution for cell, report in zip(cells, reports)
    }

    points = []
    for limit, random_stats in zip(setting.tree_limits, rounding_stats):
        online_throughput: Dict[float, float] = {}
        online_min_rate: Dict[float, float] = {}
        online_rates: Dict[float, List[float]] = {}
        online_trees: Dict[float, List[float]] = {}
        for sigma in setting.sigmas:
            samples = [
                solutions_by_cell[(limit, sigma, ordering)]
                for ordering in range(setting.online_orderings)
            ]
            (
                online_throughput[sigma],
                online_min_rate[sigma],
                online_rates[sigma],
                online_trees[sigma],
            ) = _assemble_online_point(base_sessions, samples)
        points.append(
            LimitedTreePoint(
                tree_limit=limit,
                random_throughput=random_stats["mean_throughput"],
                random_min_rate=random_stats["mean_min_rate"],
                random_session_rates=[
                    random_stats[f"mean_rate_session_{i + 1}"]
                    for i in range(num_sessions)
                ],
                random_trees_used=[
                    random_stats[f"mean_trees_session_{i + 1}"]
                    for i in range(num_sessions)
                ],
                online_throughput=online_throughput,
                online_min_rate=online_min_rate,
                online_session_rates=online_rates,
                online_trees_used=online_trees,
            )
        )

    study = LimitedTreeStudy(setting=setting, fractional=fractional, points=points)
    _LIMITED_TREE_STUDIES[key] = study
    return study


# ----------------------------------------------------------------------
# Section VI sweep runs
# ----------------------------------------------------------------------
@dataclass
class SweepInstance:
    """The Section VI network plus per-grid-point session sets."""

    setting: SweepSetting
    network: PhysicalNetwork
    routing: RoutingModel
    sessions: Dict[Tuple[int, int], List[Session]]


_SWEEP_INSTANCES: Dict[str, SweepInstance] = {}
_SWEEP_RUNS: Dict[Tuple[str, str], Dict[Tuple[int, int], FlowSolution]] = {}
_ONLINE_SWEEP_RUNS: Dict[Tuple[str, int], Dict[Tuple[int, int], FlowSolution]] = {}


def sweep_instance(scale: str) -> SweepInstance:
    """The (cached) Section VI instance for a scale."""
    if scale not in _SWEEP_INSTANCES:
        setting = sweep_setting_for_scale(scale)
        network = setting.build_network()
        routing = setting.build_routing(network, "ip")
        sessions: Dict[Tuple[int, int], List[Session]] = {}
        for count in setting.session_counts:
            for size in setting.session_sizes:
                sessions[(count, size)] = setting.build_sessions(network, count, size)
        _SWEEP_INSTANCES[scale] = SweepInstance(
            setting=setting, network=network, routing=routing, sessions=sessions
        )
    return _SWEEP_INSTANCES[scale]


def _solve_sweep_cell(task: Tuple[str, str, Tuple[int, int]]) -> FlowSolution:
    """Solve one (scale, algorithm, grid point) Section VI cell."""
    scale, algorithm, grid_point = task
    instance = sweep_instance(scale)
    sessions = instance.sessions[grid_point]
    solver, params = instance.setting.solver_spec(algorithm)
    return solve_instance(solver, sessions, instance.routing, params)


def sweep_scenario_spec(scale: str, algorithm: str, count: int, size: int) -> ScenarioSpec:
    """Declarative spec of one Section VI grid cell.

    ``repro.api.solve`` on this spec reproduces the corresponding
    :func:`sweep_runs` cell bit-identically.
    """
    return sweep_setting_for_scale(scale).scenario_spec(count, size, algorithm)


def sweep_runs(
    scale: str,
    algorithm: str,
    jobs: Optional[int] = None,
    store: StoreLike = None,
) -> Dict[Tuple[int, int], FlowSolution]:
    """MaxFlow or MaxConcurrentFlow over the whole (sessions x size) grid.

    With a persistent store (``store=`` or ``REPRO_STORE``), grid cells
    route through the spec path so sweep re-runs skip solved cells.
    """
    if algorithm not in ("maxflow", "maxconcurrent"):
        raise ConfigurationError(f"unknown algorithm {algorithm!r}")
    key = (scale, algorithm)
    if key not in _SWEEP_RUNS:
        instance = sweep_instance(scale)
        grid_points = list(instance.sessions)
        resolved_store = resolve_store(store)
        if resolved_store is not None:
            specs = [
                sweep_scenario_spec(scale, algorithm, count, size)
                for count, size in grid_points
            ]
            results = _solve_specs_store_backed(specs, jobs, resolved_store)
        else:
            tasks = [(scale, algorithm, gp) for gp in grid_points]
            results = _map_cells(_solve_sweep_cell, tasks, jobs)
        _SWEEP_RUNS[key] = dict(zip(grid_points, results))
    return _SWEEP_RUNS[key]


def _solve_online_cell(task: Tuple[str, int, Tuple[int, int]]) -> FlowSolution:
    """Route one grid point's replicated arrival sequence online.

    The arrival process comes from the cell's declarative spec
    (:meth:`SweepSetting.online_scenario_spec` — replication, demand
    and a spawn-tree permutation seed), applied to the shared cached
    instance, so this procedural path is bit-identical to solving the
    spec through ``repro.api``.
    """
    scale, tree_limit, grid_point = task
    instance = sweep_instance(scale)
    setting = instance.setting
    spec = setting.online_scenario_spec(*grid_point, tree_limit)
    ordered = spec.arrivals.apply(instance.sessions[grid_point])
    return solve_instance(
        "online", ordered, instance.routing, spec.solver_params
    )


def online_scenario_spec(
    scale: str, tree_limit: int, count: int, size: int
) -> ScenarioSpec:
    """Declarative spec of one Section VI online grid cell.

    ``repro.api.solve`` on this spec reproduces the corresponding
    :func:`online_sweep_runs` cell bit-identically.
    """
    return sweep_setting_for_scale(scale).online_scenario_spec(count, size, tree_limit)


def online_sweep_runs(
    scale: str,
    tree_limit: int,
    jobs: Optional[int] = None,
    store: StoreLike = None,
) -> Dict[Tuple[int, int], FlowSolution]:
    """Online algorithm over the grid with each session replicated ``tree_limit`` times.

    With a persistent store (``store=`` or ``REPRO_STORE``), grid cells
    route through the spec path — a warm re-run of the online sweep
    performs zero solver calls, exactly like the offline sweeps.
    """
    key = (scale, tree_limit)
    if key not in _ONLINE_SWEEP_RUNS:
        instance = sweep_instance(scale)
        grid_points = list(instance.sessions)
        resolved_store = resolve_store(store)
        if resolved_store is not None:
            specs = [
                online_scenario_spec(scale, tree_limit, count, size)
                for count, size in grid_points
            ]
            results = _solve_specs_store_backed(specs, jobs, resolved_store)
        else:
            tasks = [(scale, tree_limit, gp) for gp in grid_points]
            results = _map_cells(_solve_online_cell, tasks, jobs)
        _ONLINE_SWEEP_RUNS[key] = dict(zip(grid_points, results))
    return _ONLINE_SWEEP_RUNS[key]
