"""Section III experiments: Tables II & IV and Figures 2–4 (fixed IP routing).

The setting is the flat Waxman topology with two competing sessions; the
MaxFlow and MaxConcurrentFlow FPTAS are run over a sweep of approximation
ratios and the paper's table rows / figure series are extracted.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import flat_instance, flat_ratio_sweep, flat_scenario_spec
from repro.experiments.settings import flat_setting_for_scale
from repro.metrics.distribution import tree_rate_distribution
from repro.metrics.summary import solutions_to_table
from repro.metrics.utilization import (
    covered_edges_for_sessions,
    link_utilization_series,
    utilization_staircase,
)


def _ratio_table_data(scale: str, routing_kind: str, algorithm: str) -> Dict:
    solutions = flat_ratio_sweep(scale, routing_kind, algorithm)
    instance = flat_instance(scale, routing_kind)
    data: Dict[str, Dict] = {"ratios": sorted(solutions), "columns": {}}
    for ratio in sorted(solutions):
        solution = solutions[ratio]
        column: Dict[str, float] = {
            "overall_throughput": solution.overall_throughput,
            "oracle_calls": float(solution.oracle_calls),
        }
        for index, session_result in enumerate(solution.sessions):
            column[f"rate_session_{index + 1}"] = session_result.rate
            column[f"trees_session_{index + 1}"] = float(session_result.num_trees)
        if "prescale_oracle_calls" in solution.extra:
            column["main_oracle_calls"] = float(solution.extra["main_oracle_calls"])
            column["prescale_oracle_calls"] = float(
                solution.extra["prescale_oracle_calls"]
            )
        data["columns"][f"{ratio:g}"] = column
    data["session_sizes"] = [s.size for s in instance.sessions]
    data["demand"] = instance.setting.demand
    data["num_nodes"] = instance.network.num_nodes
    data["num_edges"] = instance.network.num_edges
    # Declarative provenance: each column's cell as a Scenario-API spec,
    # so any table entry can be re-solved (or submitted remotely) with
    # ``repro.api.solve``.
    data["scenario_specs"] = {
        f"{ratio:g}": flat_scenario_spec(scale, routing_kind, algorithm, ratio).to_jsonable()
        for ratio in data["ratios"]
    }
    return data


def _notes(scale: str) -> str:
    setting = flat_setting_for_scale(scale)
    if scale == "paper":
        return (
            "Paper scale: 100-node Waxman, capacity 100, sessions of "
            f"{setting.session_sizes} members, demand {setting.demand}; ratio grid "
            f"{setting.ratios} (0.98/0.99 omitted: multi-hour pure-Python runs)."
        )
    return (
        f"Quick scale: {setting.num_nodes}-node Waxman, sessions of "
        f"{setting.session_sizes} members, ratios {setting.ratios}."
    )


# ----------------------------------------------------------------------
# Table II — MaxFlow vs approximation ratio
# ----------------------------------------------------------------------
def table2(scale: str = "quick", routing_kind: str = "ip") -> ExperimentResult:
    """Paper Table II: MaxFlow rates/throughput/trees/MST-ops per ratio."""
    solutions = flat_ratio_sweep(scale, routing_kind, "maxflow")
    data = _ratio_table_data(scale, routing_kind, "maxflow")
    rendered = solutions_to_table(
        solutions, title="Table II — MaxFlow (fixed IP routing)"
    )
    return ExperimentResult(
        experiment_id="table2",
        title="Experiment result of MaxFlow",
        scale=scale,
        data=data,
        rendered=rendered,
        notes=_notes(scale),
    )


# ----------------------------------------------------------------------
# Table IV — MaxConcurrentFlow vs approximation ratio
# ----------------------------------------------------------------------
def table4(scale: str = "quick", routing_kind: str = "ip") -> ExperimentResult:
    """Paper Table IV: MaxConcurrentFlow rates/throughput/trees/MST-ops per ratio."""
    solutions = flat_ratio_sweep(scale, routing_kind, "maxconcurrent")
    data = _ratio_table_data(scale, routing_kind, "maxconcurrent")
    rendered = solutions_to_table(
        solutions, title="Table IV — MaxConcurrentFlow (fixed IP routing)"
    )
    return ExperimentResult(
        experiment_id="table4",
        title="Experiment results of MaxConcurrentFlow",
        scale=scale,
        data=data,
        rendered=rendered,
        notes=_notes(scale),
    )


# ----------------------------------------------------------------------
# Figures 2 & 3 — accumulative tree-rate distributions
# ----------------------------------------------------------------------
def _tree_rate_figure(
    experiment_id: str, title: str, scale: str, routing_kind: str, algorithm: str
) -> ExperimentResult:
    solutions = flat_ratio_sweep(scale, routing_kind, algorithm)
    data: Dict[str, Dict] = {"sessions": {}}
    lines: List[str] = []
    num_sessions = len(next(iter(solutions.values())).sessions)
    for session_index in range(num_sessions):
        per_ratio = {}
        for ratio, solution in sorted(solutions.items()):
            ranks, fractions = tree_rate_distribution(solution.sessions[session_index])
            per_ratio[f"{ratio:g}"] = {
                "normalized_rank": list(ranks),
                "cumulative_fraction": list(fractions),
            }
            # Report the paper's headline statistic: share of rate in the
            # top 10% of trees.
            if fractions.size:
                top10 = fractions[max(0, int(0.1 * fractions.size) - 1)]
                lines.append(
                    f"session {session_index + 1} ratio {ratio:g}: "
                    f"top-10% trees carry {top10:.2%} of the rate "
                    f"({fractions.size} trees)"
                )
        data["sessions"][f"session_{session_index + 1}"] = per_ratio
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        scale=scale,
        data=data,
        rendered="\n".join(lines),
        notes=_notes(scale),
    )


def fig2(scale: str = "quick", routing_kind: str = "ip") -> ExperimentResult:
    """Paper Fig. 2: overlay tree rate distribution under MaxFlow."""
    return _tree_rate_figure(
        "fig2", "Overlay Tree Rate Distribution (MaxFlow)", scale, routing_kind, "maxflow"
    )


def fig3(scale: str = "quick", routing_kind: str = "ip") -> ExperimentResult:
    """Paper Fig. 3: overlay tree rate distribution under MaxConcurrentFlow."""
    return _tree_rate_figure(
        "fig3",
        "Overlay Tree Rate Distribution (MaxConcurrentFlow)",
        scale,
        routing_kind,
        "maxconcurrent",
    )


# ----------------------------------------------------------------------
# Figure 4 — link utilization
# ----------------------------------------------------------------------
def fig4(scale: str = "quick", routing_kind: str = "ip") -> ExperimentResult:
    """Paper Fig. 4: link-utilization distribution for MaxFlow and MaxConcurrentFlow."""
    instance = flat_instance(scale, routing_kind)
    covered = covered_edges_for_sessions(instance.network, instance.sessions)
    data: Dict[str, Dict] = {"covered_links": int(covered.size), "algorithms": {}}
    lines = [f"physical links covered by the sessions' unicast paths: {covered.size}"]
    for algorithm, label in (("maxflow", "MaxFlow"), ("maxconcurrent", "MaxConcurrentFlow")):
        solutions = flat_ratio_sweep(scale, routing_kind, algorithm)
        per_ratio = {}
        for ratio, solution in sorted(solutions.items()):
            ranks, utilization = link_utilization_series(solution, covered)
            staircase = utilization_staircase(solution, covered)
            per_ratio[f"{ratio:g}"] = {
                "normalized_rank": list(ranks),
                "utilization": list(utilization),
                "staircase": staircase,
            }
            lines.append(
                f"{label} ratio {ratio:g}: mean utilization "
                f"{float(utilization.mean()) if utilization.size else 0.0:.3f}, "
                f"{len(staircase)} distinct congestion levels"
            )
        data["algorithms"][label] = per_ratio
    return ExperimentResult(
        experiment_id="fig4",
        title="Link Utilization",
        scale=scale,
        data=data,
        rendered="\n".join(lines),
        notes=_notes(scale),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.settings import configure_jobs, experiment_cli_parser

    args = experiment_cli_parser(
        "Section III experiments (Tables II/IV, Figs 2-4)"
    ).parse_args()
    if args.jobs is not None:
        configure_jobs(args.jobs)
    scale = args.scale
    for result in (table2(scale), table4(scale), fig2(scale), fig3(scale), fig4(scale)):
        print(result)
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
