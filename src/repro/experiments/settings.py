"""Experiment settings at quick and paper scales.

Two experiment families appear in the paper:

* the **flat setting** of Sections III–V: a 100-node Waxman topology with
  uniform capacity 100 carrying two sessions of 7 and 5 members (demand
  100 each), solved for a sweep of approximation ratios;
* the **sweep setting** of Section VI: a two-level 10 AS x 100 router
  topology carrying ``n = 1..9`` sessions of average size 10..90 with
  unit demands.

"Quick" scale shrinks the topology, session sizes and ratio grids so that
every experiment finishes in seconds (suitable for the test and benchmark
suites); "paper" scale uses the paper's parameters.  Every reduction is
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.overlay.session import Session, random_session
from repro.routing.base import RoutingModel
from repro.routing.dynamic import DynamicRouting
from repro.routing.ip_routing import FixedIPRouting
from repro.topology.generators import paper_flat_topology, paper_two_level_topology
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import ensure_rng

DEFAULT_SEED = 2004


def _routing_for(network: PhysicalNetwork, kind: str) -> RoutingModel:
    if kind == "ip":
        return FixedIPRouting(network)
    if kind == "dynamic":
        return DynamicRouting(network)
    raise ConfigurationError(f"unknown routing kind {kind!r}")


@dataclass(frozen=True)
class FlatSetting:
    """The two-session flat-Waxman setting of Sections III–V.

    Attributes mirror the paper's experiment description; the session
    member sets are drawn from the topology with the given seed so that
    every experiment (and the IP-routing versus arbitrary-routing
    comparison) sees the same instance.
    """

    num_nodes: int = 100
    capacity: float = 100.0
    session_sizes: Tuple[int, ...] = (7, 5)
    demand: float = 100.0
    ratios: Tuple[float, ...] = (0.90, 0.92, 0.95)
    prescale_epsilon: float = 0.1
    seed: int = DEFAULT_SEED

    def build_network(self) -> PhysicalNetwork:
        """The Waxman topology of this setting."""
        return paper_flat_topology(
            num_nodes=self.num_nodes, capacity=self.capacity, seed=self.seed
        )

    def build_sessions(self, network: PhysicalNetwork) -> List[Session]:
        """The competing sessions of this setting (deterministic for the seed)."""
        rng = ensure_rng(self.seed + 1)
        return [
            random_session(
                network,
                size,
                demand=self.demand,
                seed=rng,
                name=f"session-{index + 1}",
            )
            for index, size in enumerate(self.session_sizes)
        ]

    def build_routing(self, network: PhysicalNetwork, kind: str = "ip") -> RoutingModel:
        """Routing model of the requested kind over ``network``."""
        return _routing_for(network, kind)


@dataclass(frozen=True)
class LimitedTreeSetting:
    """Parameters of the limited-tree experiments (Figs 5/6 and 10/11)."""

    tree_limits: Tuple[int, ...] = (1, 2, 4, 8, 12, 16, 20)
    sigmas: Tuple[float, ...] = (10.0, 30.0, 100.0)
    rounding_trials: int = 20
    online_orderings: int = 10
    fractional_ratio: float = 0.95
    seed: int = DEFAULT_SEED


@dataclass(frozen=True)
class SweepSetting:
    """The Section VI sweep: sessions x average session size grid."""

    num_ases: int = 10
    routers_per_as: int = 100
    capacity: float = 100.0
    session_counts: Tuple[int, ...] = (1, 3, 5, 7, 9)
    session_sizes: Tuple[int, ...] = (10, 30, 50, 70, 90)
    demand: float = 1.0
    ratio: float = 0.95
    prescale_epsilon: float = 0.1
    online_sigma: float = 10.0
    online_tree_limits: Tuple[int, ...] = (5, 60)
    seed: int = DEFAULT_SEED

    def build_network(self) -> PhysicalNetwork:
        """The two-level AS/router topology of this setting."""
        return paper_two_level_topology(
            num_ases=self.num_ases,
            routers_per_as=self.routers_per_as,
            capacity=self.capacity,
            seed=self.seed,
        )

    def build_sessions(
        self, network: PhysicalNetwork, count: int, size: int
    ) -> List[Session]:
        """``count`` random sessions of ``size`` members each."""
        rng = ensure_rng(self.seed + count * 1000 + size)
        return [
            random_session(
                network, size, demand=self.demand, seed=rng, name=f"session-{i + 1}"
            )
            for i in range(count)
        ]

    def build_routing(self, network: PhysicalNetwork, kind: str = "ip") -> RoutingModel:
        """Routing model of the requested kind over ``network``."""
        return _routing_for(network, kind)


# ----------------------------------------------------------------------
# scale presets
# ----------------------------------------------------------------------
def paper_flat_setting() -> FlatSetting:
    """The paper's Sections III–V setting (100 nodes, sessions of 7 and 5).

    The ratio grid stops at 0.97: the 0.98/0.99 columns of the paper's
    tables need hundreds of thousands of MST operations, which is a
    multi-hour pure-Python run; the trend is already visible at 0.97.
    """
    return FlatSetting(
        num_nodes=100,
        session_sizes=(7, 5),
        ratios=(0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97),
    )


def quick_flat_setting() -> FlatSetting:
    """Seconds-scale version of the flat setting (benchmarks, CI)."""
    return FlatSetting(
        num_nodes=48,
        session_sizes=(6, 4),
        ratios=(0.85, 0.90),
        prescale_epsilon=0.15,
    )


def tiny_flat_setting() -> FlatSetting:
    """Sub-second flat setting used by the unit/integration test suite."""
    return FlatSetting(
        num_nodes=30,
        session_sizes=(4, 3),
        ratios=(0.80,),
        prescale_epsilon=0.2,
    )


def quick_limited_tree_setting() -> LimitedTreeSetting:
    """Seconds-scale limited-tree setting."""
    return LimitedTreeSetting(
        tree_limits=(1, 2, 4, 8, 12),
        sigmas=(10.0, 100.0),
        rounding_trials=10,
        online_orderings=5,
        fractional_ratio=0.88,
    )


def tiny_limited_tree_setting() -> LimitedTreeSetting:
    """Sub-second limited-tree setting used by the test suite."""
    return LimitedTreeSetting(
        tree_limits=(1, 2, 3),
        sigmas=(10.0,),
        rounding_trials=3,
        online_orderings=2,
        fractional_ratio=0.80,
    )


def paper_limited_tree_setting() -> LimitedTreeSetting:
    """The paper's limited-tree setting (tree limits 1..20, 100 trials)."""
    return LimitedTreeSetting(
        tree_limits=tuple(range(1, 21)),
        sigmas=(10.0, 20.0, 30.0, 40.0, 100.0, 200.0),
        rounding_trials=100,
        online_orderings=100,
        fractional_ratio=0.95,
    )


def quick_sweep_setting() -> SweepSetting:
    """Seconds-scale version of the Section VI sweep."""
    return SweepSetting(
        num_ases=3,
        routers_per_as=14,
        session_counts=(1, 2, 3),
        session_sizes=(4, 8, 12),
        ratio=0.85,
        prescale_epsilon=0.15,
        online_tree_limits=(2, 6),
    )


def tiny_sweep_setting() -> SweepSetting:
    """Sub-second Section VI sweep used by the test suite."""
    return SweepSetting(
        num_ases=2,
        routers_per_as=10,
        session_counts=(1, 2),
        session_sizes=(3, 4),
        ratio=0.80,
        prescale_epsilon=0.2,
        online_tree_limits=(1, 2),
    )


def paper_sweep_setting() -> SweepSetting:
    """The paper's Section VI sweep (10x100 topology, up to 9 sessions of 90)."""
    return SweepSetting()


def flat_setting_for_scale(scale: str) -> FlatSetting:
    """Resolve a flat setting from a scale name (``tiny``/``quick``/``paper``)."""
    if scale == "tiny":
        return tiny_flat_setting()
    if scale == "quick":
        return quick_flat_setting()
    if scale == "paper":
        return paper_flat_setting()
    raise ConfigurationError(f"unknown scale {scale!r}; use 'tiny', 'quick' or 'paper'")


def limited_tree_setting_for_scale(scale: str) -> LimitedTreeSetting:
    """Resolve a limited-tree setting from a scale name."""
    if scale == "tiny":
        return tiny_limited_tree_setting()
    if scale == "quick":
        return quick_limited_tree_setting()
    if scale == "paper":
        return paper_limited_tree_setting()
    raise ConfigurationError(f"unknown scale {scale!r}; use 'tiny', 'quick' or 'paper'")


def sweep_setting_for_scale(scale: str) -> SweepSetting:
    """Resolve a sweep setting from a scale name."""
    if scale == "tiny":
        return tiny_sweep_setting()
    if scale == "quick":
        return quick_sweep_setting()
    if scale == "paper":
        return paper_sweep_setting()
    raise ConfigurationError(f"unknown scale {scale!r}; use 'tiny', 'quick' or 'paper'")


# ----------------------------------------------------------------------
# execution settings (parallel sweep runs)
# ----------------------------------------------------------------------
JOBS_ENV_VAR = "REPRO_JOBS"

_configured_jobs: Optional[int] = None


def configure_jobs(jobs: Optional[int]) -> Optional[int]:
    """Set the process-wide default worker count for experiment sweeps.

    This is the programmatic face of the ``--jobs`` CLI knob: the section
    CLIs call it once at startup and every sweep in the process picks it
    up.  A configured value takes precedence over the ``REPRO_JOBS``
    environment variable — an explicit flag must win over ambient
    environment.  ``0`` means "all CPU cores"; ``None`` clears the
    configured value.  Returns the previous configured value (``None``
    if unset), suitable for restoring.
    """
    global _configured_jobs
    previous = _configured_jobs
    _configured_jobs = None if jobs is None else _validate_jobs(jobs)
    return previous


def default_jobs() -> int:
    """Default sweep parallelism.

    Precedence: :func:`configure_jobs` value (the CLI flag), then the
    ``REPRO_JOBS`` env var, then 1 (serial).
    """
    if _configured_jobs is not None:
        return _configured_jobs
    env = os.environ.get(JOBS_ENV_VAR)
    if env is not None:
        try:
            return _validate_jobs(int(env))
        except ValueError:
            raise ConfigurationError(
                f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
    return 1


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``--jobs`` value to a concrete worker count (``>= 1``).

    ``None`` falls back to :func:`default_jobs`; ``0`` means "all CPU
    cores"; negative values are rejected.
    """
    jobs = default_jobs() if jobs is None else _validate_jobs(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _validate_jobs(jobs: int) -> int:
    jobs = int(jobs)
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0 (0 = all cores), got {jobs}")
    return jobs


def experiment_cli_parser(description: str):
    """Argparse parser with the shared ``--scale`` / ``--jobs`` knobs.

    Used by the ``repro.experiments.sectionN`` CLIs; callers should pass
    ``args.jobs`` to :func:`configure_jobs` when it is not ``None``.
    """
    import argparse

    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale",
        default="quick",
        choices=("tiny", "quick", "paper"),
        help="experiment scale preset (default: quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for independent sweep cells "
            f"(0 = all CPU cores; default: ${JOBS_ENV_VAR} or 1)"
        ),
    )
    return parser
