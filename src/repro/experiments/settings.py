"""Experiment settings at quick and paper scales.

Two experiment families appear in the paper:

* the **flat setting** of Sections III–V: a 100-node Waxman topology with
  uniform capacity 100 carrying two sessions of 7 and 5 members (demand
  100 each), solved for a sweep of approximation ratios;
* the **sweep setting** of Section VI: a two-level 10 AS x 100 router
  topology carrying ``n = 1..9`` sessions of average size 10..90 with
  unit demands.

"Quick" scale shrinks the topology, session sizes and ratio grids so that
every experiment finishes in seconds (suitable for the test and benchmark
suites); "paper" scale uses the paper's parameters.  Every reduction is
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.api.registry import default_registry
from repro.api.specs import ArrivalSpec, ScenarioSpec, TopologySpec, WorkloadSpec
from repro.overlay.session import Session
from repro.routing.base import RoutingModel
from repro.topology.network import PhysicalNetwork
from repro.util.errors import ConfigurationError
from repro.util.rng import spawn_child_seed

DEFAULT_SEED = 2004

# Experiment algorithm grid name -> (registry solver name, ratio param key).
_SOLVER_FOR_ALGORITHM = {
    "maxflow": "max_flow",
    "maxconcurrent": "max_concurrent_flow",
}


def solver_name_for_algorithm(algorithm: str) -> str:
    """Map a sweep-grid algorithm name to its registry solver name."""
    try:
        return _SOLVER_FOR_ALGORITHM[algorithm]
    except KeyError:
        raise ConfigurationError(f"unknown algorithm {algorithm!r}") from None


def _solver_spec(
    algorithm: str, ratio: float, prescale_epsilon: float
) -> Tuple[str, Dict[str, Any]]:
    """Registry solver name + params shared by both setting families."""
    solver = solver_name_for_algorithm(algorithm)
    params: Dict[str, Any] = {"approximation_ratio": ratio}
    if algorithm == "maxconcurrent":
        params["prescale_epsilon"] = prescale_epsilon
    return solver, params


@dataclass(frozen=True)
class FlatSetting:
    """The two-session flat-Waxman setting of Sections III–V.

    Attributes mirror the paper's experiment description; the session
    member sets are drawn from the topology with the given seed so that
    every experiment (and the IP-routing versus arbitrary-routing
    comparison) sees the same instance.
    """

    num_nodes: int = 100
    capacity: float = 100.0
    session_sizes: Tuple[int, ...] = (7, 5)
    demand: float = 100.0
    ratios: Tuple[float, ...] = (0.90, 0.92, 0.95)
    prescale_epsilon: float = 0.1
    seed: int = DEFAULT_SEED

    def topology_spec(self) -> TopologySpec:
        """Declarative spec of this setting's Waxman topology."""
        return TopologySpec(
            generator="paper_flat",
            params={"num_nodes": self.num_nodes, "capacity": self.capacity},
            seed=self.seed,
        )

    def workload_spec(self) -> WorkloadSpec:
        """Declarative spec of this setting's competing sessions."""
        return WorkloadSpec(
            sizes=self.session_sizes, demand=self.demand, seed=self.seed + 1
        )

    def solver_spec(self, algorithm: str, ratio: float) -> Tuple[str, Dict[str, Any]]:
        """Registry solver name + params for one grid cell of this setting."""
        return _solver_spec(algorithm, ratio, self.prescale_epsilon)

    def scenario_spec(
        self, routing_kind: str, algorithm: str, ratio: float
    ) -> ScenarioSpec:
        """The complete declarative scenario of one flat sweep cell."""
        solver, params = self.solver_spec(algorithm, ratio)
        return ScenarioSpec(
            topology=self.topology_spec(),
            workload=self.workload_spec(),
            routing=routing_kind,
            solver=solver,
            solver_params=params,
        )

    def online_scenario_spec(
        self, routing_kind: str, sigma: float, arrivals: ArrivalSpec
    ) -> ScenarioSpec:
        """The declarative scenario of one online run over this setting.

        ``arrivals`` pins the replication and arrival order, so the spec
        fully determines the run; the limited-tree study derives the
        arrival seeds (see
        :func:`repro.experiments.runner.limited_tree_arrival_spec`).
        """
        return ScenarioSpec(
            topology=self.topology_spec(),
            workload=self.workload_spec(),
            routing=routing_kind,
            solver="online",
            solver_params={"sigma": sigma, "group_by_members": True},
            arrivals=arrivals,
        )

    def build_network(self) -> PhysicalNetwork:
        """The Waxman topology of this setting."""
        return self.topology_spec().build()

    def build_sessions(self, network: PhysicalNetwork) -> List[Session]:
        """The competing sessions of this setting (deterministic for the seed)."""
        return self.workload_spec().build(network)

    def build_routing(self, network: PhysicalNetwork, kind: str = "ip") -> RoutingModel:
        """Routing model of the requested kind over ``network``."""
        return default_registry().build_routing(network, kind)


@dataclass(frozen=True)
class LimitedTreeSetting:
    """Parameters of the limited-tree experiments (Figs 5/6 and 10/11)."""

    tree_limits: Tuple[int, ...] = (1, 2, 4, 8, 12, 16, 20)
    sigmas: Tuple[float, ...] = (10.0, 30.0, 100.0)
    rounding_trials: int = 20
    online_orderings: int = 10
    fractional_ratio: float = 0.95
    seed: int = DEFAULT_SEED


@dataclass(frozen=True)
class SweepSetting:
    """The Section VI sweep: sessions x average session size grid."""

    num_ases: int = 10
    routers_per_as: int = 100
    capacity: float = 100.0
    session_counts: Tuple[int, ...] = (1, 3, 5, 7, 9)
    session_sizes: Tuple[int, ...] = (10, 30, 50, 70, 90)
    demand: float = 1.0
    ratio: float = 0.95
    prescale_epsilon: float = 0.1
    online_sigma: float = 10.0
    online_tree_limits: Tuple[int, ...] = (5, 60)
    seed: int = DEFAULT_SEED

    def topology_spec(self) -> TopologySpec:
        """Declarative spec of this setting's two-level AS/router topology."""
        return TopologySpec(
            generator="paper_two_level",
            params={
                "num_ases": self.num_ases,
                "routers_per_as": self.routers_per_as,
                "capacity": self.capacity,
            },
            seed=self.seed,
        )

    def workload_spec(self, count: int, size: int) -> WorkloadSpec:
        """Declarative spec of one grid point's random sessions."""
        return WorkloadSpec(
            sizes=(size,) * count,
            demand=self.demand,
            seed=self.seed + count * 1000 + size,
        )

    def solver_spec(self, algorithm: str) -> Tuple[str, Dict[str, Any]]:
        """Registry solver name + params for one sweep cell of this setting."""
        return _solver_spec(algorithm, self.ratio, self.prescale_epsilon)

    def scenario_spec(self, count: int, size: int, algorithm: str) -> ScenarioSpec:
        """The complete declarative scenario of one Section VI grid cell."""
        solver, params = self.solver_spec(algorithm)
        return ScenarioSpec(
            topology=self.topology_spec(),
            workload=self.workload_spec(count, size),
            routing="ip",
            solver=solver,
            solver_params=params,
        )

    def online_scenario_spec(self, count: int, size: int, tree_limit: int) -> ScenarioSpec:
        """The declarative scenario of one Section VI *online* grid cell.

        Each session is replicated ``tree_limit`` times and the replica
        list is permuted with a seed from the setting's spawn tree —
        documented mapping: ``spawn_child_seed(setting.seed, tree_limit,
        count, size)`` (see :func:`repro.util.rng.spawn_child_seed`),
        which cannot collide across nearby grid points or tree limits
        the way the old additive ``seed + 37*count + size`` derivation
        could.  The spec fully determines the run, so online cells route
        through the report store exactly like offline cells.
        """
        return ScenarioSpec(
            topology=self.topology_spec(),
            workload=self.workload_spec(count, size),
            routing="ip",
            solver="online",
            solver_params={"sigma": self.online_sigma, "group_by_members": True},
            arrivals=ArrivalSpec(
                replication=tree_limit,
                seed=spawn_child_seed(self.seed, tree_limit, count, size),
            ),
        )

    def build_network(self) -> PhysicalNetwork:
        """The two-level AS/router topology of this setting."""
        return self.topology_spec().build()

    def build_sessions(
        self, network: PhysicalNetwork, count: int, size: int
    ) -> List[Session]:
        """``count`` random sessions of ``size`` members each."""
        return self.workload_spec(count, size).build(network)

    def build_routing(self, network: PhysicalNetwork, kind: str = "ip") -> RoutingModel:
        """Routing model of the requested kind over ``network``."""
        return default_registry().build_routing(network, kind)


# ----------------------------------------------------------------------
# scale presets
# ----------------------------------------------------------------------
def paper_flat_setting() -> FlatSetting:
    """The paper's Sections III–V setting (100 nodes, sessions of 7 and 5).

    The ratio grid stops at 0.97: the 0.98/0.99 columns of the paper's
    tables need hundreds of thousands of MST operations, which is a
    multi-hour pure-Python run; the trend is already visible at 0.97.
    """
    return FlatSetting(
        num_nodes=100,
        session_sizes=(7, 5),
        ratios=(0.90, 0.91, 0.92, 0.93, 0.94, 0.95, 0.96, 0.97),
    )


def quick_flat_setting() -> FlatSetting:
    """Seconds-scale version of the flat setting (benchmarks, CI)."""
    return FlatSetting(
        num_nodes=48,
        session_sizes=(6, 4),
        ratios=(0.85, 0.90),
        prescale_epsilon=0.15,
    )


def tiny_flat_setting() -> FlatSetting:
    """Sub-second flat setting used by the unit/integration test suite."""
    return FlatSetting(
        num_nodes=30,
        session_sizes=(4, 3),
        ratios=(0.80,),
        prescale_epsilon=0.2,
    )


def quick_limited_tree_setting() -> LimitedTreeSetting:
    """Seconds-scale limited-tree setting."""
    return LimitedTreeSetting(
        tree_limits=(1, 2, 4, 8, 12),
        sigmas=(10.0, 100.0),
        rounding_trials=10,
        online_orderings=5,
        fractional_ratio=0.88,
    )


def tiny_limited_tree_setting() -> LimitedTreeSetting:
    """Sub-second limited-tree setting used by the test suite."""
    return LimitedTreeSetting(
        tree_limits=(1, 2, 3),
        sigmas=(10.0,),
        rounding_trials=3,
        online_orderings=2,
        fractional_ratio=0.80,
    )


def paper_limited_tree_setting() -> LimitedTreeSetting:
    """The paper's limited-tree setting (tree limits 1..20, 100 trials)."""
    return LimitedTreeSetting(
        tree_limits=tuple(range(1, 21)),
        sigmas=(10.0, 20.0, 30.0, 40.0, 100.0, 200.0),
        rounding_trials=100,
        online_orderings=100,
        fractional_ratio=0.95,
    )


def quick_sweep_setting() -> SweepSetting:
    """Seconds-scale version of the Section VI sweep."""
    return SweepSetting(
        num_ases=3,
        routers_per_as=14,
        session_counts=(1, 2, 3),
        session_sizes=(4, 8, 12),
        ratio=0.85,
        prescale_epsilon=0.15,
        online_tree_limits=(2, 6),
    )


def tiny_sweep_setting() -> SweepSetting:
    """Sub-second Section VI sweep used by the test suite."""
    return SweepSetting(
        num_ases=2,
        routers_per_as=10,
        session_counts=(1, 2),
        session_sizes=(3, 4),
        ratio=0.80,
        prescale_epsilon=0.2,
        online_tree_limits=(1, 2),
    )


def paper_sweep_setting() -> SweepSetting:
    """The paper's Section VI sweep (10x100 topology, up to 9 sessions of 90)."""
    return SweepSetting()


def flat_setting_for_scale(scale: str) -> FlatSetting:
    """Resolve a flat setting from a scale name (``tiny``/``quick``/``paper``)."""
    if scale == "tiny":
        return tiny_flat_setting()
    if scale == "quick":
        return quick_flat_setting()
    if scale == "paper":
        return paper_flat_setting()
    raise ConfigurationError(f"unknown scale {scale!r}; use 'tiny', 'quick' or 'paper'")


def limited_tree_setting_for_scale(scale: str) -> LimitedTreeSetting:
    """Resolve a limited-tree setting from a scale name."""
    if scale == "tiny":
        return tiny_limited_tree_setting()
    if scale == "quick":
        return quick_limited_tree_setting()
    if scale == "paper":
        return paper_limited_tree_setting()
    raise ConfigurationError(f"unknown scale {scale!r}; use 'tiny', 'quick' or 'paper'")


def sweep_setting_for_scale(scale: str) -> SweepSetting:
    """Resolve a sweep setting from a scale name."""
    if scale == "tiny":
        return tiny_sweep_setting()
    if scale == "quick":
        return quick_sweep_setting()
    if scale == "paper":
        return paper_sweep_setting()
    raise ConfigurationError(f"unknown scale {scale!r}; use 'tiny', 'quick' or 'paper'")


# ----------------------------------------------------------------------
# execution settings (parallel sweep runs)
# ----------------------------------------------------------------------
# The ``--jobs`` / REPRO_JOBS plumbing lives in ``repro.util.jobs`` so
# that core algorithms (MaxConcurrentFlow pre-scaling) and the batch API
# can share it without importing the experiments layer; re-exported here
# for backwards compatibility.
from repro.util.jobs import (  # noqa: E402,F401  (re-exports)
    JOBS_ENV_VAR,
    configure_jobs,
    default_jobs,
    resolve_jobs,
)


def experiment_cli_parser(description: str):
    """Argparse parser with the shared ``--scale`` / ``--jobs`` knobs.

    Used by the ``repro.experiments.sectionN`` CLIs; callers should pass
    ``args.jobs`` to :func:`configure_jobs` when it is not ``None``.
    """
    import argparse

    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale",
        default="quick",
        choices=("tiny", "quick", "paper"),
        help="experiment scale preset (default: quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for independent sweep cells "
            f"(0 = all CPU cores; default: ${JOBS_ENV_VAR} or 1)"
        ),
    )
    return parser
