"""Section IV experiments: Figures 5 & 6 (limited number of trees).

Random-MinCongestion (rounding the MaxConcurrentFlow solution) and
Online-MinCongestion are evaluated while the number of trees each session
may use grows from 1 to the configured limit; the paper plots the overall
throughput, the rate of the smaller session, and how many distinct trees
the algorithms actually end up using.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import fractional_scenario_spec, limited_tree_study
from repro.experiments.settings import limited_tree_setting_for_scale
from repro.util.tables import format_table


def _notes(scale: str) -> str:
    setting = limited_tree_setting_for_scale(scale)
    return (
        f"tree limits {setting.tree_limits}, sigmas {setting.sigmas}, "
        f"{setting.rounding_trials} rounding trials, "
        f"{setting.online_orderings} online arrival orderings, fractional solution at "
        f"ratio {setting.fractional_ratio}"
    )


def fig5(scale: str = "quick", routing_kind: str = "ip") -> ExperimentResult:
    """Paper Fig. 5: throughput of Random and Online versus the tree limit."""
    study = limited_tree_study(scale, routing_kind)
    setting = study.setting
    limits = [p.tree_limit for p in study.points]

    data: Dict = {
        "tree_limits": limits,
        # The fractional yardstick as a Scenario-API spec (re-solvable via
        # ``repro.api.solve``).
        "fractional_scenario": fractional_scenario_spec(scale, routing_kind).to_jsonable(),
        "fractional_throughput": study.fractional.overall_throughput,
        "fractional_min_rate": study.fractional.min_rate,
        "random": {
            "throughput": study.series("random_throughput"),
            "min_rate": study.series("random_min_rate"),
            "session_rates": [p.random_session_rates for p in study.points],
        },
        "online": {},
    }
    headers = ["max trees", "Random"] + [f"Online(sigma={s:g})" for s in setting.sigmas]
    rows: List[List[object]] = []
    for index, point in enumerate(study.points):
        row: List[object] = [point.tree_limit, point.random_throughput]
        for sigma in setting.sigmas:
            row.append(point.online_throughput[sigma])
        rows.append(row)
    for sigma in setting.sigmas:
        data["online"][f"{sigma:g}"] = {
            "throughput": study.series("online_throughput", sigma),
            "min_rate": study.series("online_min_rate", sigma),
            "session_rates": [p.online_session_rates[sigma] for p in study.points],
        }
    rendered = format_table(
        headers,
        rows,
        title=(
            "Fig 5(a) — overall throughput vs tree limit "
            f"(fractional optimum {study.fractional.overall_throughput:.1f})"
        ),
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Throughput (Random and Online)",
        scale=scale,
        data=data,
        rendered=rendered,
        notes=_notes(scale),
    )


def fig6(scale: str = "quick", routing_kind: str = "ip") -> ExperimentResult:
    """Paper Fig. 6: number of distinct trees the algorithms actually use."""
    study = limited_tree_study(scale, routing_kind)
    setting = study.setting
    num_sessions = len(study.fractional.sessions)

    data: Dict = {"tree_limits": [p.tree_limit for p in study.points], "sessions": {}}
    rows: List[List[object]] = []
    headers = ["max trees"] + [
        f"s{i + 1} random" for i in range(num_sessions)
    ] + [f"s{i + 1} online(sigma={setting.sigmas[0]:g})" for i in range(num_sessions)]
    for point in study.points:
        row: List[object] = [point.tree_limit]
        row.extend(point.random_trees_used)
        row.extend(point.online_trees_used[setting.sigmas[0]])
        rows.append(row)
    for i in range(num_sessions):
        data["sessions"][f"session_{i + 1}"] = {
            "random": [p.random_trees_used[i] for p in study.points],
            "online": {
                f"{sigma:g}": [p.online_trees_used[sigma][i] for p in study.points]
                for sigma in setting.sigmas
            },
        }
    rendered = format_table(headers, rows, title="Fig 6 — distinct trees used vs tree limit")
    return ExperimentResult(
        experiment_id="fig6",
        title="Number of Trees (Random and Online)",
        scale=scale,
        data=data,
        rendered=rendered,
        notes=_notes(scale),
    )


def main() -> None:  # pragma: no cover - CLI convenience
    from repro.experiments.settings import configure_jobs, experiment_cli_parser

    args = experiment_cli_parser(
        "Section IV experiments (Figs 5-6, limited-tree study)"
    ).parse_args()
    if args.jobs is not None:
        configure_jobs(args.jobs)
    for result in (fig5(args.scale), fig6(args.scale)):
        print(result)
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
