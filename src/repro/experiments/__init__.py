"""Experiment harness: one entry per table/figure of the paper's evaluation.

Every experiment is exposed as a function taking a scale (``"quick"`` for
seconds-scale runs used by the benchmark suite and CI, ``"paper"`` for the
full-size reproduction) and returning an
:class:`~repro.experiments.report.ExperimentResult` whose ``data`` field
holds the series/rows of the corresponding table or figure and whose
``rendered`` field is a printable report.

Use :func:`run_experiment` / :data:`EXPERIMENTS` to drive them by id
(``"table2"``, ``"fig5"``, ...).
"""

from repro.experiments.report import ExperimentResult
from repro.experiments.settings import (
    FlatSetting,
    SweepSetting,
    LimitedTreeSetting,
    quick_flat_setting,
    paper_flat_setting,
    quick_sweep_setting,
    paper_sweep_setting,
)
from repro.experiments.section3 import table2, table4, fig2, fig3, fig4
from repro.experiments.section4 import fig5, fig6
from repro.experiments.section5 import (
    table7,
    table8,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
)
from repro.experiments.section6 import (
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
)

EXPERIMENTS = {
    "table2": table2,
    "table4": table4,
    "table7": table7,
    "table8": table8,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
}


def run_experiment(experiment_id: str, scale: str = "quick") -> ExperimentResult:
    """Run a paper experiment by its id (``"table2"``, ``"fig12"``, ...)."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from exc
    return fn(scale=scale)


__all__ = [
    "ExperimentResult",
    "FlatSetting",
    "SweepSetting",
    "LimitedTreeSetting",
    "quick_flat_setting",
    "paper_flat_setting",
    "quick_sweep_setting",
    "paper_sweep_setting",
    "EXPERIMENTS",
    "run_experiment",
] + sorted(EXPERIMENTS)
