"""HTTP transport for :class:`repro.serve.app.ServeApp` (stdlib only).

A :class:`~http.server.ThreadingHTTPServer` (one daemon thread per
connection — SSE streams hold their connection open, so threading is
load-bearing, not an optimisation) dispatching to the app's
``(status, payload)`` methods:

====================  ==================================================
``POST /v1/solve``     submit a spec; 200 warm / 202 ticket / 400 / 429
``GET /v1/reports/K``  the stored report; 202 + run state while in flight
``GET /v1/runs/K/events``  SSE telemetry stream (``?timeout=SECONDS``)
``GET /v1/status``     admission/workers/runs/store backpressure snapshot
``GET /healthz``       liveness/readiness (503 draining or breaker open)
``GET /metrics``       Prometheus text exposition of the metrics registry
``GET /``              endpoint index
====================  ==================================================

Conventions: JSON bodies everywhere (errors are
``{"error": {"type", "message"}}``), the ``X-Client`` request header
names the tenant for admission accounting, and 429/503 shed responses
carry a standard ``Retry-After`` header.
"""

from __future__ import annotations

import json
import math
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.app import ServeApp
from repro.serve.sse import SSE_CONTENT_TYPE

_REPORT_PATH = re.compile(r"^/v1/reports/([^/]+)$")
_EVENTS_PATH = re.compile(r"^/v1/runs/([^/]+)/events$")


class ServeHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ServeApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: Tuple[str, int], app: ServeApp, verbose: bool = False
    ) -> None:
        super().__init__(address, ServeRequestHandler)
        self.app = app
        self.verbose = verbose


def make_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 8080, verbose: bool = False
) -> ServeHTTPServer:
    """Bind the service (``port=0`` picks an ephemeral port)."""
    return ServeHTTPServer((host, port), app, verbose=verbose)


class ServeRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    @property
    def app(self) -> ServeApp:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # ------------------------------------------------------------------
    # response helpers
    # ------------------------------------------------------------------
    def _send_json(
        self,
        code: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        headers = dict(headers or {})
        if code in (429, 503) and "Retry-After" not in headers:
            # Both shed responses (admission 429, breaker/draining 503)
            # carry the standard header so well-behaved clients pace
            # themselves without parsing the JSON body.
            retry = payload.get("retry_after_seconds", 1.0)
            try:
                headers["Retry-After"] = str(max(1, int(math.ceil(float(retry)))))
            except (TypeError, ValueError):
                headers["Retry-After"] = "1"
        body = json.dumps(payload, sort_keys=True, indent=2).encode("utf-8") + b"\n"
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, kind: str, message: str) -> None:
        self._send_json(code, {"error": {"type": kind, "message": message}})

    def _send_metrics(self) -> None:
        body = self.app.metrics_text().encode("utf-8")
        self.send_response(200)
        # The Prometheus text exposition content type (version 0.0.4).
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        parsed = urlsplit(self.path)
        path = parsed.path
        if path in ("/", ""):
            code, payload = self.app.endpoints()
            return self._send_json(code, payload)
        if path == "/v1/status":
            code, payload = self.app.status()
            return self._send_json(code, payload)
        if path == "/healthz":
            code, payload = self.app.health()
            return self._send_json(code, payload)
        if path == "/metrics":
            return self._send_metrics()
        match = _REPORT_PATH.match(path)
        if match:
            code, payload = self.app.report(match.group(1))
            return self._send_json(code, payload)
        match = _EVENTS_PATH.match(path)
        if match:
            return self._stream_events(match.group(1), parse_qs(parsed.query))
        self._send_error_json(404, "NotFound", f"no route for GET {path}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        path = urlsplit(self.path).path
        if path != "/v1/solve":
            return self._send_error_json(404, "NotFound", f"no route for POST {path}")
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            return self._send_error_json(400, "InvalidRequest", "bad Content-Length")
        raw = self.rfile.read(length) if length > 0 else b""
        code, payload = self.app.submit(raw, client=self.headers.get("X-Client"))
        # Retry-After for 429/503 is attached centrally in _send_json.
        self._send_json(code, payload)

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    def _stream_events(self, key: str, query: Dict[str, list]) -> None:
        timeout: Optional[float] = None
        if "timeout" in query:
            try:
                timeout = float(query["timeout"][0])
            except (ValueError, IndexError):
                return self._send_error_json(
                    400, "InvalidRequest", "timeout must be a number of seconds"
                )
        frames = self.app.event_stream(key, timeout=timeout)
        if frames is None:
            return self._send_error_json(
                404, "NotFound", f"unknown canonical key {key!r}"
            )
        self.send_response(200)
        self.send_header("Content-Type", SSE_CONTENT_TYPE)
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        # No Content-Length: the stream ends by closing the connection.
        self.close_connection = True
        try:
            for frame in frames:
                self.wfile.write(frame)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the tailer generator is GC-closed
