"""The serve application: submission, execution, telemetry, status.

:class:`ServeApp` is the transport-independent core of the service —
the HTTP layer (:mod:`repro.serve.routes`) is a thin adapter over four
methods, each returning ``(http_status, payload)``:

* :meth:`submit` — parse + validate a ``ScenarioSpec`` (the existing
  ``from_jsonable`` path; malformed input is a structured 400), answer
  warm keys straight from the store (zero solver work), dedupe in-flight
  keys, and pass the rest through admission control (full queue → 429).
* :meth:`report` — store-first report lookup: 200 with the full
  ``SolveReport`` JSON once solved, 202 while queued/running, 404 for
  unknown keys, 500 for dead-lettered runs.
* :meth:`event_stream` — the SSE source: tails the run's relay channel
  (replay + follow), so clients watch engine telemetry live even when
  the solve executes in a queue worker process.
* :meth:`status` — backpressure surface: admission depth/shed counters,
  active workers, run-state counts, store stats, queue counts.

Execution is pluggable at construction:

* **inline** (default): ``inline_workers`` daemon threads consume the
  admission queue and run :func:`repro.api.service.solve` in-process,
  streaming events through ``on_event`` into the relay.
  ``inline_workers=0`` accepts work without executing it (useful for
  tests and for pure-frontend processes whose queue is drained
  elsewhere).
* **cluster**: a dispatcher thread feeds admitted runs into a
  :class:`repro.cluster.WorkQueue` (in admission priority order) and a
  collector thread finalises them as their reports land in the shared
  store — external ``python -m repro.cluster worker --relay ...``
  processes do the solving and write the telemetry channels.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro import faults
from repro.api.registry import default_registry
from repro.api.service import solve
from repro.api.specs import ScenarioSpec
from repro.obs import metrics as obs_metrics
from repro.serve.admission import (
    DEFAULT_HIGH_WATER,
    AdmissionController,
    AdmissionShed,
)
from repro.serve.breaker import OPEN, CircuitBreaker
from repro.serve.relay import EventRelay
from repro.serve.sse import sse_frames
from repro.store.report_store import ReportStore
from repro.util.backoff import ExponentialBackoff
from repro.util.errors import ConfigurationError
from repro.util.retry import RetryPolicy

SERVICE_SCHEMA = "repro.serve/v1"

_TERMINAL = ("done", "failed")

faults.declare_point("serve.store.lookup", "a request thread touching the store")


class StoreUnavailable(Exception):
    """The store circuit breaker is open (or just tripped): answer 503."""

    def __init__(self, retry_after: float) -> None:
        super().__init__("report store unavailable")
        self.retry_after = max(0.1, float(retry_after))


def _error(kind: str, message: str, **extra: Any) -> Dict[str, Any]:
    return {"error": {"type": kind, "message": message}, **extra}


def _serve_counter(name: str, help_text: str):
    return obs_metrics.registry().counter(name, help_text)


@dataclass
class ServeConfig:
    """Everything a :class:`ServeApp` needs, CLI-flag-shaped.

    ``queue=None`` selects inline execution; a queue directory selects
    cluster execution (external workers drain it).  ``relay`` defaults
    to ``<store>/runs`` — the per-run JSONL channels live next to the
    store so workers sharing the store's filesystem reach them too.
    """

    store: Union[str, Path, ReportStore]
    queue: Optional[Union[str, Path]] = None
    relay: Optional[Union[str, Path]] = None
    inline_workers: int = 1
    high_water: int = DEFAULT_HIGH_WATER
    per_client_limit: Optional[int] = None
    retry_after: float = 1.0
    num_shards: int = 1
    poll_seconds: float = 0.05
    sse_timeout: float = 300.0
    default_client: str = "anonymous"
    # Store circuit breaker: consecutive request-path store failures
    # before submits/reports shed with 503, and how long the breaker
    # stays open before probing again.
    breaker_failures: int = 3
    breaker_reset_seconds: float = 5.0


@dataclass
class RunRecord:
    """One submitted run's lifecycle, as the status endpoints expose it."""

    key: str
    spec: ScenarioSpec = field(repr=False)
    client: str
    priority: int
    state: str = "queued"
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "key": self.key,
            "state": self.state,
            "client": self.client,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            out["started_at"] = self.started_at
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        if self.error is not None:
            out["error"] = self.error
        return out


class ServeApp:
    """Transport-independent service core (see module docstring)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        if config.inline_workers < 0:
            raise ConfigurationError(
                f"inline_workers must be >= 0, got {config.inline_workers}"
            )
        self.store = (
            config.store
            if isinstance(config.store, ReportStore)
            else ReportStore(config.store)
        )
        self.relay = EventRelay(
            config.relay if config.relay is not None else self.store.root / "runs"
        )
        self.queue = None
        if config.queue is not None:
            from repro.cluster.queue import WorkQueue

            self.queue = (
                config.queue
                if isinstance(config.queue, WorkQueue)
                else WorkQueue(config.queue)
            )
        self.mode = "cluster" if self.queue is not None else "inline"
        self.admission = AdmissionController(
            high_water=config.high_water,
            per_client_limit=config.per_client_limit,
            retry_after=config.retry_after,
        )
        self.registry = default_registry()
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_failures,
            reset_seconds=config.breaker_reset_seconds,
        )
        self._draining = False
        # The collector shares the tailer's stance on transient store
        # blips: retry in place before declaring the store down.
        self._collect_retry = RetryPolicy(
            max_attempts=3, floor=0.05, cap=0.5, surface="serve.collect"
        )
        self.started_at = time.time()
        # Uptime is measured on the monotonic clock: an NTP step moving
        # time.time() backwards must never yield negative uptime.
        self._started_monotonic = time.monotonic()
        self.warm_submits = 0
        self._runs: Dict[str, RunRecord] = {}
        self._watched: Dict[str, Tuple[str, RunRecord]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._threads: list = []
        if self.mode == "inline":
            for index in range(config.inline_workers):
                self._spawn(self._inline_loop, f"serve-inline-{index}")
        else:
            self._spawn(self._dispatch_loop, "serve-dispatch")
            self._spawn(self._collect_loop, "serve-collect")

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _store_contains(self, key: str) -> bool:
        """``store.contains`` on the request path, through the breaker.

        Raises :class:`StoreUnavailable` (→ 503 + Retry-After) when the
        breaker is open or this call pushed it over the threshold —
        shedding fast instead of stacking request threads onto failing
        I/O.
        """
        if not self.breaker.allow():
            raise StoreUnavailable(self.breaker.retry_after())
        try:
            faults.point("serve.store.lookup")
            result = self.store.contains(key)
        except OSError as exc:
            self.breaker.record_failure()
            raise StoreUnavailable(
                self.breaker.retry_after() or self.config.retry_after
            ) from exc
        self.breaker.record_success()
        return result

    # ------------------------------------------------------------------
    # HTTP-facing operations: (status_code, payload)
    # ------------------------------------------------------------------
    def submit(
        self, raw: bytes, client: Optional[str] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/solve``: body is a spec object or an envelope.

        The envelope form ``{"spec": {...}, "client": "...", "priority": N}``
        sets tenancy fields; a bare spec object submits as the default
        client at priority 0 (lower priority value = scheduled sooner).
        """
        _serve_counter("repro_serve_submits_total", "Solve submissions received").inc()
        if self._draining:
            return 503, _error(
                "Draining",
                "server is draining; resubmit elsewhere or after restart",
                retry_after_seconds=self.config.retry_after,
            )
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _error("InvalidJSON", str(exc))
        if not isinstance(body, dict):
            return 400, _error(
                "InvalidRequest", "body must be a JSON object (spec or envelope)"
            )
        priority = 0
        spec_data = body
        if "spec" in body:
            spec_data = body["spec"]
            client = body.get("client", client)
            priority = body.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            return 400, _error("InvalidRequest", "priority must be an integer")
        if client is not None and not isinstance(client, str):
            return 400, _error("InvalidRequest", "client must be a string")
        client = (client or self.config.default_client)[:64]
        try:
            spec = ScenarioSpec.from_jsonable(spec_data)
            # Name resolution up front: an unregistered solver/topology/
            # routing would otherwise be accepted and dead-letter later.
            self.registry.solver(spec.solver)
            self.registry.topology(spec.topology.generator)
            self.registry.routing(spec.routing)
        except (ConfigurationError, TypeError, ValueError, KeyError) as exc:
            return 400, _error(type(exc).__name__, str(exc))
        key = spec.canonical_key
        links = {
            "report": f"/v1/reports/{key}",
            "events": f"/v1/runs/{key}/events",
        }
        try:
            warm = self._store_contains(key)
        except StoreUnavailable as exc:
            return 503, _error(
                "StoreUnavailable",
                "report store is unavailable; retry shortly",
                retry_after_seconds=exc.retry_after,
            )
        if warm:
            # Warm key: the ticket is immediately redeemable, no solver
            # work, no admission charge.
            self.warm_submits += 1
            _serve_counter(
                "repro_serve_warm_hits_total",
                "Submissions answered straight from the store",
            ).inc()
            return 200, {"key": key, "state": "done", "cached": True, **links}
        with self._lock:
            existing = self._runs.get(key)
            if existing is not None and existing.state not in _TERMINAL:
                return 202, {
                    "key": key,
                    "state": existing.state,
                    "deduplicated": True,
                    **links,
                }
            record = RunRecord(key=key, spec=spec, client=client, priority=priority)
            try:
                depth = self.admission.offer(client, record, priority=priority)
            except AdmissionShed as exc:
                _serve_counter(
                    "repro_serve_shed_total",
                    "Submissions shed by admission control (429)",
                ).inc()
                return 429, _error(
                    "AdmissionShed",
                    str(exc),
                    retry_after_seconds=exc.retry_after,
                    queue_depth=exc.depth,
                    high_water=exc.high_water,
                )
            self._runs[key] = record
        return 202, {
            "key": key,
            "state": "queued",
            "client": client,
            "priority": priority,
            "queue_depth": depth,
            **links,
        }

    def report(self, key: str) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/reports/{key}``: the report, or where it stands."""
        try:
            if self._store_contains(key):
                stored = self.store.get(key)
                if stored is not None:
                    return 200, stored.to_jsonable()
        except StoreUnavailable as exc:
            return 503, _error(
                "StoreUnavailable",
                "report store is unavailable; retry shortly",
                retry_after_seconds=exc.retry_after,
            )
        run = self._runs.get(key)
        if run is None:
            return 404, _error("NotFound", f"unknown canonical key {key!r}")
        if run.state == "failed":
            detail = {
                k: v for k, v in run.snapshot().items() if k != "error"
            }
            return 500, {
                **_error("SolveFailed", run.error or "solve failed"),
                **detail,
            }
        if run.state == "done":
            # Solved, but the store entry is gone (pruned or quarantined
            # after completion): the ticket cannot be redeemed — tell the
            # client to resubmit rather than poll forever.
            return 404, _error(
                "ReportLost",
                "run completed but its stored report is no longer available; "
                "resubmit the spec",
                **{"key": key},
            )
        return 202, run.snapshot()

    def event_stream(
        self, key: str, timeout: Optional[float] = None
    ) -> Optional[Iterator[bytes]]:
        """``GET /v1/runs/{key}/events``: SSE frames, or ``None`` = 404.

        Replays the run's full relay channel then follows it live, so a
        client connecting at any point — before, during or after the
        solve — sees every persisted event and a terminal ``end`` (or
        ``timeout``) frame.
        """
        run = self._runs.get(key)
        try:
            in_store = self._store_contains(key)
        except StoreUnavailable:
            # SSE can still serve from the relay channel while the store
            # is down; only store-derived knowledge degrades.
            in_store = False
        known = run is not None or in_store or self.relay.exists(key)
        if not known:
            return None
        _serve_counter(
            "repro_serve_sse_connections_total", "SSE event streams opened"
        ).inc()
        timeout = self.config.sse_timeout if timeout is None else timeout
        if run is None and not self.relay.exists(key):
            # Warm store key with no telemetry channel (solved elsewhere,
            # or the channel was pruned): a bare end marker.
            return sse_frames(iter([{"kind": "end", "status": "done", "cached": True}]))
        events = self.relay.tail(
            key,
            poll_seconds=self.config.poll_seconds,
            timeout=timeout,
            finished=lambda: self._run_finished(key),
        )
        return sse_frames(
            events, timed_out_event={"key": key, "timeout_seconds": timeout}
        )

    def status(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /v1/status``: queue depth, workers, runs, store stats."""
        with self._lock:
            states: Dict[str, int] = {}
            for record in self._runs.values():
                states[record.state] = states.get(record.state, 0) + 1
        payload: Dict[str, Any] = {
            "service": SERVICE_SCHEMA,
            "mode": self.mode,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "draining": self._draining,
            "circuit": self.breaker.snapshot(),
            "admission": self.admission.snapshot(),
            "workers": {
                "mode": self.mode,
                "inline_workers": (
                    self.config.inline_workers if self.mode == "inline" else 0
                ),
                "active": self.admission.active,
            },
            "runs": states,
            "warm_submits": self.warm_submits,
            "store": self.store.stats(),
        }
        if self.queue is not None:
            payload["queue"] = self.queue.counts()
        return 200, payload

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /healthz``: liveness (always) and readiness (gated).

        The process answering at all is liveness.  Readiness — 200 vs
        503 — means "send this instance traffic": it fails while the
        server drains or while the store circuit breaker is open, so a
        load balancer rotates the instance out exactly when submits
        would shed anyway.
        """
        ready = not self._draining and self.breaker.state != OPEN
        payload = {
            "live": True,
            "ready": ready,
            "draining": self._draining,
            "mode": self.mode,
            "circuit": self.breaker.snapshot(),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
        }
        return (200 if ready else 503), payload

    def endpoints(self) -> Tuple[int, Dict[str, Any]]:
        """``GET /``: a tiny self-describing index for curl users."""
        return 200, {
            "service": SERVICE_SCHEMA,
            "endpoints": {
                "POST /v1/solve": "submit a ScenarioSpec (or {spec, client, "
                "priority} envelope); returns its canonical_key ticket",
                "GET /v1/reports/{key}": "fetch the SolveReport (202 while "
                "in flight)",
                "GET /v1/runs/{key}/events": "SSE stream of live engine "
                "telemetry (oracle/phase/congestion events, then end)",
                "GET /v1/status": "queue depth, workers, store stats",
                "GET /healthz": "liveness/readiness (503 while draining "
                "or while the store circuit breaker is open)",
                "GET /metrics": "Prometheus text exposition of the "
                "process metrics registry (store/queue/engine/serve)",
            },
        }

    def metrics_text(self) -> str:
        """``GET /metrics``: the registry in Prometheus text format."""
        return obs_metrics.registry().render_prometheus()

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------
    def _run_finished(self, key: str) -> bool:
        run = self._runs.get(key)
        if run is not None and run.state in _TERMINAL:
            return True
        try:
            return self.store.contains(key)
        except OSError:
            # The tailer keeps following the relay; the store's verdict
            # just isn't available this round.
            return False

    def _inline_loop(self) -> None:
        """Inline executor: admission queue → solve-with-relay → store."""
        while not self._stop.is_set():
            taken = self.admission.take(timeout=0.1)
            if taken is None:
                continue
            client, run = taken
            run.state = "running"
            run.started_at = time.time()
            writer = self.relay.open_writer(run.key)
            try:
                report = solve(run.spec, store=self.store, on_event=writer)
                writer.finish("done", cached=report.cached)
                run.state = "done"
            except Exception as exc:  # noqa: BLE001 - a bad spec must not kill the executor
                run.error = f"{type(exc).__name__}: {exc}"
                writer.finish("failed", error=run.error)
                run.state = "failed"
            finally:
                writer.close()
                run.finished_at = time.time()
                self.admission.finish(client)

    def _dispatch_loop(self) -> None:
        """Cluster dispatcher: admission queue → work queue, in priority order."""
        while not self._stop.is_set():
            taken = self.admission.take(timeout=0.1)
            if taken is None:
                continue
            client, run = taken
            try:
                self.queue.submit([run.spec], num_shards=self.config.num_shards)
            except Exception as exc:  # noqa: BLE001 - submission failure is the run's failure
                run.error = f"{type(exc).__name__}: {exc}"
                run.state = "failed"
                run.finished_at = time.time()
                self.admission.finish(client)
                continue
            run.state = "running"
            run.started_at = time.time()
            with self._lock:
                self._watched[run.key] = (client, run)

    def _collect_loop(self) -> None:
        """Cluster collector: finalise watched runs as reports land."""
        backoff = ExponentialBackoff(self.config.poll_seconds, cap=1.0)
        reopened: set = set()
        while not self._stop.is_set():
            with self._lock:
                watched = list(self._watched.items())
            progressed = False
            failures: Optional[Dict[str, str]] = None
            done_keys: Optional[set] = None
            for key, (client, run) in watched:
                try:
                    contains = self._collect_retry.call(self.store.contains, key)
                except OSError:
                    # Store unreachable even after retries: skip this key
                    # for the round and let the breaker inform request
                    # threads; the run stays watched.
                    self.breaker.record_failure()
                    continue
                self.breaker.record_success()
                if contains:
                    run.state = "done"
                else:
                    if failures is None:
                        try:
                            failures = self.queue.failures()
                        except OSError:
                            continue
                    if key not in failures:
                        if done_keys is None:
                            try:
                                done_keys = set(self.queue.done_keys())
                            except OSError:
                                continue
                        if key in done_keys and key not in reopened:
                            # Done marker but no stored report (store pruned
                            # or quarantined): put the spec back in front of
                            # the workers once.
                            self.queue.reopen(key)
                            reopened.add(key)
                        continue
                    run.error = failures[key]
                    run.state = "failed"
                run.finished_at = time.time()
                with self._lock:
                    self._watched.pop(key, None)
                self.admission.finish(client)
                progressed = True
            if progressed:
                backoff.reset()
                continue
            self._stop.wait(backoff.next_delay())

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Graceful shutdown: stop admitting, finish in-flight, flush markers.

        The SIGTERM path.  New submits shed with 503 ``Draining`` the
        moment this is called (and ``/healthz`` stops reporting ready,
        rotating the instance out of a load balancer).  Then the
        admission queue and active runs are given ``timeout`` seconds to
        finish; whatever is still non-terminal afterwards is marked
        failed and its relay channel gets an end marker, so no SSE
        client is left hanging on a stream whose writer is about to die.
        Finally the executor threads stop (:meth:`close`).
        """
        self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                watched = len(self._watched)
            if self.admission.depth == 0 and self.admission.active == 0 and watched == 0:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            if self._stop.wait(0.05):
                break
        interrupted = 0
        with self._lock:
            leftovers = [
                run for run in self._runs.values() if run.state not in _TERMINAL
            ]
            self._watched.clear()
        for run in leftovers:
            run.state = "failed"
            run.error = "server draining"
            run.finished_at = time.time()
            try:
                # fresh=False: append the marker to whatever the channel
                # already holds instead of truncating a partial run.
                self.relay.open_writer(run.key, fresh=False).finish(
                    "failed", error="server draining"
                )
            except OSError:
                pass
            interrupted += 1
        self.close()
        return {"draining": True, "interrupted_runs": interrupted}

    def close(self, timeout: float = 2.0) -> None:
        """Stop the executor threads (daemonic, so this is best-effort)."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
