"""Solve-as-a-service: an HTTP front end over the spec/report pipeline.

``repro.serve`` turns the declarative API (:mod:`repro.api`) into a
long-running, stdlib-only service: clients ``POST`` ScenarioSpec JSON
and get back the spec's ``canonical_key`` as a ticket, poll
``/v1/reports/{key}`` for the stored :class:`SolveReport` (warm keys
answer instantly from the content-addressed store, with zero solver
work), and watch live engine telemetry over Server-Sent Events at
``/v1/runs/{key}/events``.  Admission control (per-client priority
queues, high-water shedding to 429) keeps the service responsive under
load; ``/v1/status`` exposes the backpressure signals.

Layers, inside-out:

* :mod:`repro.serve.admission` — bounded prioritised submission queue.
* :mod:`repro.serve.relay` — per-run JSONL event channels bridging the
  solving process (inline thread or cluster worker) to SSE tailers.
* :mod:`repro.serve.app` — the transport-independent service core.
* :mod:`repro.serve.routes` — the HTTP layer (ThreadingHTTPServer).
* ``python -m repro.serve`` — the CLI entry point.

See the README "Serving" section for the endpoint reference and a curl
quickstart, and ``examples/serve_dashboard.py`` for an end-to-end
client.
"""

from repro.serve.admission import (
    DEFAULT_HIGH_WATER,
    AdmissionController,
    AdmissionShed,
)
from repro.serve.app import (
    SERVICE_SCHEMA,
    RunRecord,
    ServeApp,
    ServeConfig,
    StoreUnavailable,
)
from repro.serve.breaker import CircuitBreaker
from repro.serve.relay import EventRelay, RelayWriter
from repro.serve.routes import ServeHTTPServer, make_server
from repro.serve.sse import (
    SSE_CONTENT_TYPE,
    format_sse,
    parse_sse_line,
    sse_frames,
)

__all__ = [
    "AdmissionController",
    "AdmissionShed",
    "CircuitBreaker",
    "DEFAULT_HIGH_WATER",
    "EventRelay",
    "RelayWriter",
    "RunRecord",
    "SERVICE_SCHEMA",
    "SSE_CONTENT_TYPE",
    "ServeApp",
    "ServeConfig",
    "ServeHTTPServer",
    "StoreUnavailable",
    "format_sse",
    "make_server",
    "parse_sse_line",
    "sse_frames",
]
