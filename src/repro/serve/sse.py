"""Server-Sent Events wire formatting (RFC-less but universal).

SSE is the simplest streaming transport that works through plain HTTP —
one long-lived ``text/event-stream`` response, events separated by blank
lines — which keeps the serve layer stdlib-only on both ends
(``EventSource`` in browsers, a line loop over ``urllib`` elsewhere).

An event on the wire::

    event: congestion
    data: {"kind":"congestion","max_congestion":1.25,"step":42}

    ``event:`` carries the engine event kind (``oracle`` / ``phase`` /
    ``congestion`` / ``end`` ...), ``data:`` the canonical-JSON payload.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Optional, Tuple

from repro.util.serialization import canonical_json

SSE_CONTENT_TYPE = "text/event-stream"


def format_sse(payload: Dict[str, Any], event: Optional[str] = None) -> bytes:
    """One SSE frame: optional ``event:`` name plus a JSON ``data:`` line.

    The payload is canonical JSON (single line by construction), so the
    multi-line ``data:`` continuation rules never come into play.
    """
    head = f"event: {event}\n" if event else ""
    return (head + f"data: {canonical_json(payload)}\n\n").encode("utf-8")


def sse_frames(
    events: Iterable[Dict[str, Any]],
    timed_out_event: Optional[Dict[str, Any]] = None,
) -> Iterator[bytes]:
    """Frame a relay event stream for the wire.

    Each event dict's ``kind`` becomes the SSE event name.  If the
    source ends without an ``end`` marker (tailer timeout) and
    ``timed_out_event`` is given, it is emitted as a final ``timeout``
    frame so clients can distinguish "run over" from "stream gave up".
    """
    saw_end = False
    for payload in events:
        kind = payload.get("kind") or "message"
        if kind == "end":
            saw_end = True
        yield format_sse(payload, event=str(kind))
    if not saw_end and timed_out_event is not None:
        yield format_sse(timed_out_event, event="timeout")


def parse_sse_line(raw: bytes, state: Dict[str, Any]) -> Optional[Tuple[str, str]]:
    """Incremental client-side parser for one SSE line.

    Feed decoded wire lines in order with a shared mutable ``state``
    dict; returns ``(event_name, data)`` when a blank line completes a
    frame, else ``None``.  Used by the example dashboard client and the
    tests — kept here so client and server agree on the framing.
    """
    line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
    if line == "":
        if "data" in state:
            frame = (state.get("event", "message"), state["data"])
            state.clear()
            return frame
        state.clear()
        return None
    if line.startswith("event:"):
        state["event"] = line[len("event:") :].strip()
    elif line.startswith("data:"):
        chunk = line[len("data:") :].strip()
        state["data"] = state.get("data", "") + chunk
    return None
