"""A store-failure circuit breaker for the serve front end.

When the report store's filesystem degrades (NFS outage, full disk,
injected faults), every request thread would otherwise pile into slow
failing I/O — latency explodes exactly when the system is least able to
afford it.  The breaker converts that into fast, honest 503s:

* **closed** — healthy; calls flow, consecutive failures are counted.
* **open** — ``failure_threshold`` consecutive failures tripped it;
  :meth:`allow` answers ``False`` (callers respond 503 + Retry-After
  without touching the store) until ``reset_seconds`` elapse.
* **half_open** — the cool-down expired; exactly one probe call is let
  through.  Success closes the breaker, failure re-opens it for another
  full cool-down.

The ``repro_serve_circuit_open`` gauge mirrors the state (1 = open) on
``/metrics``, so dashboards see the store outage the moment the serve
layer does.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.util.errors import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


def _open_gauge():
    return obs_metrics.registry().gauge(
        "repro_serve_circuit_open",
        "1 while the serve layer's store circuit breaker is open",
    )


class CircuitBreaker:
    """Consecutive-failure breaker with a one-probe half-open state.

    Thread-safe; serve request threads share one instance per resource.
    ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds <= 0:
            raise ConfigurationError(
                f"reset_seconds must be positive, got {reset_seconds}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        # Register the gauge at construction so /metrics carries the
        # (closed = 0) sample even before any failure is recorded.
        _open_gauge().set(0)

    @property
    def state(self) -> str:
        with self._lock:
            return self._resolve_state()

    def _resolve_state(self) -> str:
        # Caller holds the lock.  Time alone moves open -> half_open.
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_seconds
        ):
            self._state = HALF_OPEN
            self._probing = False
        return self._state

    def allow(self) -> bool:
        """Whether the caller may touch the protected resource now.

        In half-open state only the first caller gets ``True`` (the
        probe); the rest shed until the probe reports back.
        """
        with self._lock:
            state = self._resolve_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """The protected call worked: close (and reset) the breaker."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0
            self._opened_at = None
            self._probing = False
            _open_gauge().set(0)

    def record_failure(self) -> None:
        """The protected call failed; may trip the breaker open."""
        with self._lock:
            state = self._resolve_state()
            if state == HALF_OPEN:
                # The probe failed: a fresh full cool-down.
                self._trip()
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        # Caller holds the lock.
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probing = False
        _open_gauge().set(1)

    def retry_after(self) -> float:
        """Seconds until the breaker would next admit a probe (>= 0)."""
        with self._lock:
            if self._resolve_state() != OPEN:
                return 0.0
            return max(
                0.0, self.reset_seconds - (self._clock() - self._opened_at)
            )

    def snapshot(self) -> Dict[str, object]:
        """State for ``/healthz`` / status payloads."""
        with self._lock:
            return {
                "state": self._resolve_state(),
                "consecutive_failures": self._failures,
                "retry_after_seconds": (
                    max(
                        0.0,
                        self.reset_seconds - (self._clock() - self._opened_at),
                    )
                    if self._state == OPEN
                    else 0.0
                ),
            }
