"""Admission control: per-client submission queues with shed-on-depth.

The serving layer must stay responsive when submissions outpace solver
capacity, so admission is decided *before* a run is enqueued:

* Every admitted run waits in a priority queue (lower ``priority`` value
  runs sooner; FIFO within a priority level).  The queue is one shared
  heap with per-client accounting — conceptually a queue per client,
  multiplexed — so ``/v1/status`` can show each tenant's backlog.
* When total queued depth reaches the **high-water mark**, new
  submissions are *shed*: :meth:`AdmissionController.offer` raises
  :class:`AdmissionShed`, which the HTTP layer maps to ``429 Too Many
  Requests`` with a ``Retry-After`` hint.  Shedding at the door keeps
  the queue bounded and the latency of admitted work predictable.
* A ``per_client_limit`` additionally caps any single client's queued
  runs, so one noisy tenant cannot consume the whole admission window.

Executors consume via :meth:`take` (blocking with timeout) and report
:meth:`finish` when a run completes, which keeps the ``active`` gauge —
surfaced as backpressure in ``/v1/status`` — honest.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.util.errors import ConfigurationError, ReproError

DEFAULT_HIGH_WATER = 64


class AdmissionShed(ReproError):
    """A submission was refused because the queue crossed its high-water mark."""

    def __init__(
        self,
        message: str,
        depth: int,
        high_water: int,
        client: str,
        retry_after: float = 1.0,
    ) -> None:
        super().__init__(message)
        self.depth = depth
        self.high_water = high_water
        self.client = client
        self.retry_after = retry_after


class AdmissionController:
    """Bounded, prioritised, per-client-accounted submission queue.

    Thread-safe: HTTP handler threads ``offer`` while executor threads
    ``take``.
    """

    def __init__(
        self,
        high_water: int = DEFAULT_HIGH_WATER,
        per_client_limit: Optional[int] = None,
        retry_after: float = 1.0,
    ) -> None:
        if high_water < 1:
            raise ConfigurationError(f"high_water must be >= 1, got {high_water}")
        if per_client_limit is not None and per_client_limit < 1:
            raise ConfigurationError(
                f"per_client_limit must be >= 1, got {per_client_limit}"
            )
        self.high_water = int(high_water)
        self.per_client_limit = per_client_limit
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, str, Any]] = []
        self._seq = itertools.count()
        self._queued_per_client: Dict[str, int] = {}
        self._active = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0

    # ------------------------------------------------------------------
    # producer side (HTTP handlers)
    # ------------------------------------------------------------------
    def offer(self, client: str, item: Any, priority: int = 0) -> int:
        """Admit ``item`` for ``client`` or raise :class:`AdmissionShed`.

        Returns the queue depth *after* admission (the caller's position
        bound, handy in the 202 response).
        """
        with self._ready:
            depth = len(self._heap)
            if depth >= self.high_water:
                self.shed += 1
                raise AdmissionShed(
                    f"admission queue is at its high-water mark "
                    f"({depth}/{self.high_water} queued); retry later",
                    depth=depth,
                    high_water=self.high_water,
                    client=client,
                    retry_after=self.retry_after,
                )
            client_depth = self._queued_per_client.get(client, 0)
            if (
                self.per_client_limit is not None
                and client_depth >= self.per_client_limit
            ):
                self.shed += 1
                raise AdmissionShed(
                    f"client {client!r} has {client_depth} queued run(s), "
                    f"at its per-client limit ({self.per_client_limit})",
                    depth=depth,
                    high_water=self.high_water,
                    client=client,
                    retry_after=self.retry_after,
                )
            heapq.heappush(self._heap, (int(priority), next(self._seq), client, item))
            self._queued_per_client[client] = client_depth + 1
            self.admitted += 1
            self._ready.notify()
            return len(self._heap)

    # ------------------------------------------------------------------
    # consumer side (executor threads)
    # ------------------------------------------------------------------
    def take(self, timeout: Optional[float] = None) -> Optional[Tuple[str, Any]]:
        """Pop the next ``(client, item)`` by priority, or ``None`` on timeout."""
        with self._ready:
            if not self._heap and not self._ready.wait_for(
                lambda: bool(self._heap), timeout=timeout
            ):
                return None
            _, _, client, item = heapq.heappop(self._heap)
            remaining = self._queued_per_client.get(client, 1) - 1
            if remaining > 0:
                self._queued_per_client[client] = remaining
            else:
                self._queued_per_client.pop(client, None)
            self._active += 1
            return client, item

    def finish(self, client: str) -> None:
        """A taken run finished (successfully or not)."""
        with self._lock:
            self._active = max(0, self._active - 1)
            self.completed += 1

    # ------------------------------------------------------------------
    # introspection (the /v1/status payload)
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON admission state for the status endpoint."""
        with self._lock:
            return {
                "depth": len(self._heap),
                "active": self._active,
                "high_water": self.high_water,
                "per_client_limit": self.per_client_limit,
                "queued_per_client": dict(sorted(self._queued_per_client.items())),
                "admitted": self.admitted,
                "shed": self.shed,
                "completed": self.completed,
            }
