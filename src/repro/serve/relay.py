"""Per-run JSONL event channels bridging solver and server processes.

A solve may execute anywhere — an inline server thread, a queue worker
on another host — but the SSE endpoint that streams its telemetry lives
in the server process.  The :class:`EventRelay` is the bridge: a
directory (conventionally next to the report store) holding one
append-only JSONL file per run, keyed on the scenario's
``canonical_key``.

* **Writer side** (the process running the solve): a
  :class:`RelayWriter` is installed as the ``on_event`` listener of
  :func:`repro.api.service.solve`, appending one JSON line per live
  :class:`~repro.core.engine.instrumentation.EngineEvent` — every event,
  including ones the run's bounded in-memory log drops.  When the solve
  finishes, :meth:`RelayWriter.finish` appends an *end marker* line
  (``{"kind": "end", "status": "done"|"failed", ...}``).  Each line is
  one small ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
  readers never see a torn line.
* **Tailer side** (the server process): :meth:`EventRelay.tail` is a
  blocking generator that replays the channel from the beginning — a
  client connecting after the run finished still sees the full event
  history — then follows appends with capped-exponential-backoff polls
  until the end marker arrives.  Because a crashed worker may never
  write the marker, the tailer also accepts a ``finished`` predicate
  (e.g. "the report is in the store" / "the run record is terminal") and
  synthesizes an end marker after a short grace period once it holds.

The channel is advisory telemetry: losing one (pruned directory, worker
without ``--relay``) degrades a run's event stream to a bare end marker,
never the solve itself.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Union

from repro import faults
from repro.core.engine.instrumentation import EngineEvent
from repro.util.backoff import ExponentialBackoff
from repro.util.retry import RetryPolicy
from repro.util.serialization import canonical_json

RELAY_SCHEMA = "RunEvents/v1"
END_KIND = "end"

faults.declare_point("relay.append", "one event line about to be appended")
faults.declare_point("relay.tail.read", "a tailer reading new channel bytes")


class RelayWriter:
    """Appends one JSON line per event to a run's relay channel.

    Callable, so it plugs directly into ``solve(..., on_event=writer)``
    and :func:`~repro.core.engine.instrumentation.event_tap`.  Usable as
    a context manager: the descriptor is closed on exit, and an
    exception leaving the block finishes the channel as ``failed`` if no
    end marker was written yet.
    """

    def __init__(self, path: Union[str, Path], fresh: bool = True) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        flags = os.O_CREAT | os.O_WRONLY | os.O_APPEND
        if fresh:
            flags |= os.O_TRUNC
        self._fd: Optional[int] = os.open(str(path), flags, 0o666)
        self.path = path
        self.finished = False
        self.events_written = 0

    def __call__(self, event: EngineEvent) -> None:
        self.append(event.to_jsonable())

    def append(self, payload: Dict[str, Any]) -> None:
        """Write one event line (a single atomic ``os.write``)."""
        if self._fd is None:
            return
        # The mangle seam simulates a writer dying mid-line: a truncated
        # suffix with no trailing newline, which tailers must skip.
        data = faults.mangle(
            "relay.append", (canonical_json(payload) + "\n").encode("utf-8")
        )
        os.write(self._fd, data)
        self.events_written += 1

    def finish(self, status: str = "done", **extra: Any) -> None:
        """Append the end marker and close the channel (idempotent)."""
        if self.finished or self._fd is None:
            return
        self.append({"kind": END_KIND, "status": status, **extra})
        self.finished = True
        self.close()

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RelayWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and not self.finished:
            self.finish("failed", error=f"{exc_type.__name__}: {exc}")
        self.close()


class EventRelay:
    """A directory of per-run JSONL event channels keyed on canonical key."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.events.jsonl"

    def exists(self, key: str) -> bool:
        """Whether a channel for ``key`` has been opened (any state)."""
        return self.path_for(key).exists()

    def open_writer(self, key: str, fresh: bool = True) -> RelayWriter:
        """Open ``key``'s channel for appending (truncating by default).

        ``fresh=True`` is the per-attempt contract: a re-run (lease
        expiry, requeue) restarts the channel so tailers replay one
        coherent attempt, not two interleaved ones.
        """
        return RelayWriter(self.path_for(key), fresh=fresh)

    def events(self, key: str) -> list:
        """The channel's currently-persisted events (no waiting)."""
        path = self.path_for(key)
        if not path.exists():
            return []
        out = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn trailing line mid-append
        return out

    def tail(
        self,
        key: str,
        poll_seconds: float = 0.05,
        timeout: Optional[float] = None,
        finished: Optional[Callable[[], bool]] = None,
        grace_seconds: float = 1.0,
    ) -> Iterator[Dict[str, Any]]:
        """Replay then follow ``key``'s channel; yields event dicts.

        Terminates after yielding the end marker.  When ``finished``
        reports the run over but no marker arrives within
        ``grace_seconds`` (worker crashed, relay-less worker), a
        synthetic ``{"kind": "end", "synthetic": true}`` marker is
        yielded so consumers always get a terminal event.  Returns
        without a marker only on ``timeout`` — consumers surface that as
        their own timeout condition.
        """
        path = self.path_for(key)
        deadline = None if timeout is None else time.monotonic() + timeout
        backoff = ExponentialBackoff(poll_seconds, cap=0.5)
        read_retry = RetryPolicy(
            max_attempts=3, floor=0.02, cap=0.25, surface="relay.tail"
        )
        buffer = b""
        handle = None
        finished_since: Optional[float] = None

        def _read_chunk(fh) -> bytes:
            faults.point("relay.tail.read")
            return fh.read()

        try:
            while True:
                if handle is None and path.exists():
                    handle = path.open("rb")
                progressed = False
                if handle is not None:
                    try:
                        chunk = read_retry.call(_read_chunk, handle)
                    except OSError:
                        # Still failing after retries: treat as an empty
                        # poll — the SSE stream stays up and the next
                        # round tries again.
                        chunk = b""
                    if chunk:
                        buffer += chunk
                        while b"\n" in buffer:
                            line, buffer = buffer.split(b"\n", 1)
                            if not line.strip():
                                continue
                            try:
                                payload = json.loads(line)
                            except json.JSONDecodeError:
                                continue
                            progressed = True
                            yield payload
                            if payload.get("kind") == END_KIND:
                                return
                if progressed:
                    backoff.reset()
                    continue
                if finished is not None and finished():
                    # The run is over; give the writer a grace window to
                    # land its end marker (store-put happens just before
                    # finish()), then synthesize one.
                    now = time.monotonic()
                    if finished_since is None:
                        finished_since = now
                    elif now - finished_since >= grace_seconds:
                        yield {"kind": END_KIND, "status": "done", "synthetic": True}
                        return
                if deadline is not None and time.monotonic() > deadline:
                    return
                time.sleep(backoff.next_delay())
        finally:
            if handle is not None:
                handle.close()
