"""``python -m repro.serve`` — run the solve-as-a-service HTTP front end.

Inline mode (default): the server process solves submissions itself on
``--inline-workers`` daemon threads::

    python -m repro.serve --store /tmp/store --port 8080

Cluster mode: pass ``--queue DIR`` and the server only admits and
dispatches — external ``python -m repro.cluster worker --relay ...``
processes (sharing the queue + store filesystem) do the solving.
``--spawn-workers N`` launches N such workers as child processes for a
self-contained single-host cluster::

    python -m repro.serve --store /tmp/store --queue /tmp/queue \\
        --spawn-workers 4

``--port 0`` binds an ephemeral port; the chosen address is always
printed as ``listening on http://HOST:PORT`` (stdout, flushed) so
wrappers and tests can parse it.
"""

from __future__ import annotations

import argparse
import signal
import subprocess
import sys
import threading
from typing import List, Optional

from repro.serve.app import ServeApp, ServeConfig
from repro.serve.routes import make_server
from repro.store import STORE_ENV_VAR, resolve_store


def build_app(args: argparse.Namespace) -> ServeApp:
    store = args.store or resolve_store(None)
    if store is None:
        raise SystemExit(
            f"no store configured: pass --store DIR or export {STORE_ENV_VAR}"
        )
    config = ServeConfig(
        store=store,
        queue=args.queue,
        relay=args.relay,
        inline_workers=args.inline_workers,
        high_water=args.high_water,
        per_client_limit=args.per_client,
        num_shards=args.num_shards,
        sse_timeout=args.sse_timeout,
    )
    return ServeApp(config)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="HTTP solve service: submit specs, poll reports, "
        "stream engine telemetry over SSE",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--store",
        default=None,
        help=f"report-store directory (default: ${STORE_ENV_VAR} if set)",
    )
    parser.add_argument(
        "--queue",
        default=None,
        help="work-queue directory: switches to cluster mode (external "
        "`repro.cluster worker` processes solve; this process only "
        "admits, dispatches and serves)",
    )
    parser.add_argument(
        "--relay",
        default=None,
        help="event-relay directory for per-run telemetry channels "
        "(default: <store>/runs)",
    )
    parser.add_argument(
        "--inline-workers",
        type=int,
        default=1,
        help="inline solver threads (inline mode only; 0 = accept but "
        "never execute, for frontend-only processes)",
    )
    parser.add_argument(
        "--high-water",
        type=int,
        default=64,
        help="admission queue depth at which new submissions are shed (429)",
    )
    parser.add_argument(
        "--per-client",
        type=int,
        default=None,
        help="cap on any single client's queued submissions",
    )
    parser.add_argument(
        "--num-shards",
        type=int,
        default=1,
        help="shard count for cluster-mode queue submission",
    )
    parser.add_argument(
        "--sse-timeout",
        type=float,
        default=300.0,
        help="default max seconds an SSE stream waits for its end marker",
    )
    parser.add_argument(
        "--spawn-workers",
        type=int,
        default=0,
        help="(cluster mode) launch N `repro.cluster worker` child "
        "processes against the queue",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="max seconds a SIGTERM-triggered graceful drain waits for "
        "in-flight runs before marking them failed and exiting",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each HTTP request to stderr"
    )
    args = parser.parse_args(argv)

    if args.spawn_workers and not args.queue:
        raise SystemExit("--spawn-workers requires --queue (cluster mode)")

    app = build_app(args)
    server = make_server(app, host=args.host, port=args.port, verbose=args.verbose)

    children: List[subprocess.Popen] = []
    if args.spawn_workers:
        from repro.cluster.worker import worker_command

        cmd = worker_command(
            args.queue,
            app.store.root,
            poll_seconds=0.1,
            exit_when_empty=False,
            relay_root=app.relay.root,
        )
        for _ in range(args.spawn_workers):
            children.append(subprocess.Popen(cmd))

    host, port = server.server_address[0], server.server_address[1]
    print(f"listening on http://{host}:{port}", flush=True)
    print(
        f"mode={app.mode} store={app.store.root} relay={app.relay.root}"
        + (f" queue={args.queue} workers={args.spawn_workers}" if args.queue else ""),
        file=sys.stderr,
        flush=True,
    )
    # Graceful SIGTERM: stop admitting (503 Draining), wait for in-flight
    # runs up to --drain-timeout, flush relay end markers, then stop the
    # accept loop.  Runs on a helper thread because serve_forever owns
    # the main thread and app.drain blocks.
    drained = threading.Event()

    def _drain_and_stop(signum: int, frame: object) -> None:
        if drained.is_set():
            return
        drained.set()

        def _worker() -> None:
            print("SIGTERM: draining...", file=sys.stderr, flush=True)
            try:
                app.drain(timeout=args.drain_timeout)
            finally:
                server.shutdown()

        threading.Thread(target=_worker, name="serve-drain", daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain_and_stop)
    except ValueError:  # pragma: no cover - not on the main thread
        pass

    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        app.close()
        for child in children:
            child.terminate()
        for child in children:
            try:
                child.wait(timeout=5)
            except subprocess.TimeoutExpired:
                child.kill()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
