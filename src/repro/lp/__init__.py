"""Exact LP baselines for small instances.

The paper notes that M1/M2 are solvable in polynomial time (via the
ellipsoid method and the Tutte/Nash-Williams separation oracle) but uses
the FPTAS in practice.  For validation we provide exact LP formulations
over *explicitly enumerated* overlay trees, which is tractable for small
sessions (Cayley: ``|S|^(|S|-2)`` trees) and gives ground-truth optima the
test suite checks the FPTAS against.
"""

from repro.lp.exact import (
    exact_max_flow,
    exact_max_concurrent_flow,
    ExactSolution,
    enumerate_session_trees,
)

__all__ = [
    "exact_max_flow",
    "exact_max_concurrent_flow",
    "ExactSolution",
    "enumerate_session_trees",
]
