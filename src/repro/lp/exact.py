"""Exact LP solutions of M1 and M2 by explicit tree enumeration.

These solvers enumerate **all** overlay spanning trees of every session
(Prüfer correspondence), build the tree-versus-edge usage matrix
``n_e(t)``, and hand the resulting LP to ``scipy.optimize.linprog``
(HiGHS).  They are exponential in the session size and exist purely as
ground truth for the FPTAS, the rounding algorithms, and the property
tests — exactly the role the ellipsoid-based formulation plays in the
paper's theory sections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.overlay.session import Session
from repro.overlay.tree import OverlayTree
from repro.overlay.tree_packing import enumerate_spanning_trees
from repro.routing.base import RoutingModel
from repro.util.errors import ConfigurationError, InfeasibleProblemError

PairKey = Tuple[int, int]


@dataclass(frozen=True)
class ExactSolution:
    """Exact optimum of a small M1/M2 instance.

    Attributes
    ----------
    objective:
        Optimal objective value — the M1 normalised throughput for
        :func:`exact_max_flow`, or the concurrent throughput ``lambda``
        for :func:`exact_max_concurrent_flow`.
    session_rates:
        Total flow per session at the optimum.
    tree_flows:
        Per-session mapping from tree (as a tuple of overlay edges) to its
        flow at the optimum.
    """

    objective: float
    session_rates: Tuple[float, ...]
    tree_flows: Tuple[Dict[Tuple[PairKey, ...], float], ...]

    @property
    def overall_throughput(self) -> float:
        """Aggregate receiver rate given the stored session rates."""
        return float(sum(self._receivers[i] * r for i, r in enumerate(self.session_rates)))

    # receivers are attached post-construction by the solvers
    _receivers: Tuple[int, ...] = ()


def enumerate_session_trees(
    session: Session,
    routing: RoutingModel,
    max_members: int = 6,
) -> Tuple[List[Tuple[PairKey, ...]], np.ndarray]:
    """All overlay trees of a session and their ``n_e(t)`` usage matrix.

    Returns ``(trees, usage)`` where ``usage[t]`` is the per-physical-edge
    traversal-count vector of tree ``t`` under the routing model's
    hop-metric routes (fixed IP routes).  Limited to ``max_members``
    members to keep the enumeration tractable.
    """
    if session.size > max_members:
        raise ConfigurationError(
            f"exact enumeration limited to {max_members} members, "
            f"session has {session.size}"
        )
    network = routing.network
    members = list(session.members)
    trees = enumerate_spanning_trees(members)
    pairs = [
        (min(members[i], members[j]), max(members[i], members[j]))
        for i in range(len(members))
        for j in range(i + 1, len(members))
    ]
    paths = routing.paths_for_pairs(pairs)
    pair_usage = {
        pk: np.bincount(paths[pk].edge_ids, minlength=network.num_edges).astype(float)
        for pk in pairs
    }
    usage = np.zeros((len(trees), network.num_edges), dtype=float)
    for t_index, tree in enumerate(trees):
        for edge in tree:
            usage[t_index] += pair_usage[edge]
    return trees, usage


def _enumerate_all(
    sessions: Sequence[Session], routing: RoutingModel, max_members: int
) -> Tuple[List[List[Tuple[PairKey, ...]]], List[np.ndarray]]:
    all_trees: List[List[Tuple[PairKey, ...]]] = []
    all_usage: List[np.ndarray] = []
    for session in sessions:
        trees, usage = enumerate_session_trees(session, routing, max_members)
        all_trees.append(trees)
        all_usage.append(usage)
    return all_trees, all_usage


def exact_max_flow(
    sessions: Sequence[Session],
    routing: RoutingModel,
    max_members: int = 6,
) -> ExactSolution:
    """Exact optimum of problem M1 (maximum overlay flow).

    Objective (paper eq. 3): maximise
    ``sum_i sum_j (|S_i| - 1) / (|Smax| - 1) * f_j^i`` subject to the
    per-edge capacity constraints ``sum n_e(t) f <= c_e``.
    """
    if not sessions:
        raise ConfigurationError("at least one session is required")
    network = routing.network
    all_trees, all_usage = _enumerate_all(sessions, routing, max_members)
    max_size = max(s.size for s in sessions)

    num_vars = sum(len(trees) for trees in all_trees)
    c = np.zeros(num_vars)
    offset = 0
    offsets = []
    for session, trees in zip(sessions, all_trees):
        offsets.append(offset)
        weight = (session.size - 1) / (max_size - 1)
        c[offset : offset + len(trees)] = -weight
        offset += len(trees)

    a_ub = np.concatenate(all_usage, axis=0).T  # (num_edges, num_vars) after transpose
    # all_usage[i] has shape (num_trees_i, num_edges); concatenating along
    # axis 0 stacks trees, transposing gives edges x variables.
    b_ub = network.capacities.copy()

    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    if not result.success:
        raise InfeasibleProblemError(f"exact M1 LP failed: {result.message}")

    rates = []
    tree_flows = []
    for index, (session, trees) in enumerate(zip(sessions, all_trees)):
        start = offsets[index]
        x = result.x[start : start + len(trees)]
        rates.append(float(x.sum()))
        tree_flows.append({trees[t]: float(v) for t, v in enumerate(x) if v > 1e-9})
    solution = ExactSolution(
        objective=float(-result.fun),
        session_rates=tuple(rates),
        tree_flows=tuple(tree_flows),
    )
    object.__setattr__(solution, "_receivers", tuple(s.num_receivers for s in sessions))
    return solution


def exact_max_concurrent_flow(
    sessions: Sequence[Session],
    routing: RoutingModel,
    max_members: int = 6,
) -> ExactSolution:
    """Exact optimum of problem M2 (maximum concurrent overlay flow).

    Objective (paper eq. 4): maximise ``lambda`` subject to every session
    routing at least ``lambda * dem(i)`` units and the capacity
    constraints.
    """
    if not sessions:
        raise ConfigurationError("at least one session is required")
    network = routing.network
    all_trees, all_usage = _enumerate_all(sessions, routing, max_members)

    num_tree_vars = sum(len(trees) for trees in all_trees)
    num_vars = num_tree_vars + 1  # last variable is lambda
    c = np.zeros(num_vars)
    c[-1] = -1.0

    # Capacity constraints.
    a_cap = np.zeros((network.num_edges, num_vars))
    a_cap[:, :num_tree_vars] = np.concatenate(all_usage, axis=0).T
    b_cap = network.capacities.copy()

    # Demand constraints: lambda * dem(i) - sum_j f_j^i <= 0.
    a_dem = np.zeros((len(sessions), num_vars))
    offset = 0
    offsets = []
    for index, (session, trees) in enumerate(zip(sessions, all_trees)):
        offsets.append(offset)
        a_dem[index, offset : offset + len(trees)] = -1.0
        a_dem[index, -1] = session.demand
        offset += len(trees)

    a_ub = np.concatenate([a_cap, a_dem], axis=0)
    b_ub = np.concatenate([b_cap, np.zeros(len(sessions))])

    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=(0, None), method="highs")
    if not result.success:
        raise InfeasibleProblemError(f"exact M2 LP failed: {result.message}")

    rates = []
    tree_flows = []
    for index, (session, trees) in enumerate(zip(sessions, all_trees)):
        start = offsets[index]
        x = result.x[start : start + len(trees)]
        rates.append(float(x.sum()))
        tree_flows.append({trees[t]: float(v) for t, v in enumerate(x) if v > 1e-9})
    solution = ExactSolution(
        objective=float(-result.fun),
        session_rates=tuple(rates),
        tree_flows=tuple(tree_flows),
    )
    object.__setattr__(solution, "_receivers", tuple(s.num_receivers for s in sessions))
    return solution
